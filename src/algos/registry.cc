#include "algos/registry.h"

#include "algos/apfl.h"
#include "algos/ditto.h"
#include "algos/fedavg.h"
#include "algos/fedbabu.h"
#include "algos/fedema.h"
#include "algos/fedper.h"
#include "algos/fedprox.h"
#include "algos/fedrep.h"
#include "algos/lg_fedavg.h"
#include "algos/local_only.h"
#include "algos/perfedavg.h"
#include "algos/qffl.h"
#include "algos/scaffold.h"
#include "common/check.h"

namespace calibre::algos {
namespace {

bool parse_ssl_kind(const std::string& name, ssl::Kind& kind) {
  if (name == "SimCLR") kind = ssl::Kind::kSimClr;
  else if (name == "BYOL") kind = ssl::Kind::kByol;
  else if (name == "SimSiam") kind = ssl::Kind::kSimSiam;
  else if (name == "MoCoV2") kind = ssl::Kind::kMoCoV2;
  else if (name == "SwAV") kind = ssl::Kind::kSwav;
  else if (name == "SMoG") kind = ssl::Kind::kSmog;
  else return false;
  return true;
}

}  // namespace

std::unique_ptr<fl::Algorithm> make_algorithm(const std::string& name,
                                              const fl::FlConfig& config) {
  if (name == "FedAvg") return std::make_unique<FedAvg>(config, false);
  if (name == "FedAvg-FT") return std::make_unique<FedAvg>(config, true);
  if (name == "SCAFFOLD") return std::make_unique<Scaffold>(config, false);
  if (name == "SCAFFOLD-FT") return std::make_unique<Scaffold>(config, true);
  if (name == "FedProx") return std::make_unique<FedProx>(config);
  if (name == "q-FedAvg") return std::make_unique<QFfl>(config);
  if (name == "LG-FedAvg") return std::make_unique<LgFedAvg>(config);
  if (name == "FedPer") return std::make_unique<FedPer>(config);
  if (name == "FedRep") return std::make_unique<FedRep>(config);
  if (name == "FedBABU") return std::make_unique<FedBabu>(config);
  if (name == "PerFedAvg") return std::make_unique<PerFedAvg>(config);
  if (name == "APFL") return std::make_unique<Apfl>(config);
  if (name == "Ditto") return std::make_unique<Ditto>(config);
  if (name == "FedEMA") return std::make_unique<FedEma>(config);
  if (name == "Script-Fair") {
    return std::make_unique<LocalOnly>(config, 10, "Script-Fair");
  }
  if (name == "Script-Convergent") {
    return std::make_unique<LocalOnly>(config, 60, "Script-Convergent");
  }
  if (name.rfind("pFL-", 0) == 0) {
    ssl::Kind kind;
    CALIBRE_CHECK_MSG(parse_ssl_kind(name.substr(4), kind),
                      "unknown SSL method in " << name);
    return std::make_unique<core::PflSsl>(config, kind);
  }
  if (name.rfind("Calibre (", 0) == 0 && name.back() == ')') {
    ssl::Kind kind;
    CALIBRE_CHECK_MSG(
        parse_ssl_kind(name.substr(9, name.size() - 10), kind),
        "unknown SSL method in " << name);
    return std::make_unique<core::Calibre>(config, kind);
  }
  CALIBRE_CHECK_MSG(false, "unknown algorithm: " << name);
  return nullptr;
}

std::unique_ptr<fl::Algorithm> make_calibre(
    ssl::Kind kind, const fl::FlConfig& config,
    const core::CalibreConfig& calibre_config) {
  return std::make_unique<core::Calibre>(config, kind, calibre_config);
}

std::vector<std::string> registered_algorithms() {
  return {"FedAvg",     "FedAvg-FT",   "FedProx",      "q-FedAvg",
          "SCAFFOLD",   "SCAFFOLD-FT",
          "LG-FedAvg",  "FedPer",      "FedRep",       "FedBABU",
          "PerFedAvg",  "APFL",        "Ditto",        "FedEMA",
          "Script-Fair", "Script-Convergent",
          "pFL-SimCLR", "pFL-BYOL",    "pFL-SimSiam",  "pFL-MoCoV2",
          "pFL-SwAV",   "pFL-SMoG",
          "Calibre (SimCLR)", "Calibre (BYOL)", "Calibre (SimSiam)",
          "Calibre (MoCoV2)", "Calibre (SwAV)", "Calibre (SMoG)"};
}

}  // namespace calibre::algos
