// LG-FedAvg (Liang et al., 2019 — "Think Locally, Act Globally"): clients
// keep *local* representation layers (the Encoder) and federate only the
// global layers (the Head). The mirror image of FedPer.
#pragma once

#include "algos/client_store.h"
#include "flapi/algorithm.h"
#include "flapi/model.h"

namespace calibre::algos {

class LgFedAvg : public fl::Algorithm {
 public:
  explicit LgFedAvg(const fl::FlConfig& config) : fl::Algorithm(config) {}

  std::string name() const override { return "LG-FedAvg"; }

  nn::ModelState initialize() override;
  fl::ClientUpdate local_update(const nn::ModelState& global,
                                const fl::ClientContext& ctx) override;
  // Weighted FedAvg folds natively: O(model) server memory for any fan-out.
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
  double personalize(const nn::ModelState& global,
                     const fl::PersonalizationContext& ctx) override;

  // Encoder features of `x` under client `client_id`'s local representation
  // (the shared random init when the client never trained). Used by the
  // representation-quality benches: LG-FedAvg's encoders never leave the
  // client, so features must be extracted per client.
  tensor::Tensor client_features(int client_id, const tensor::Tensor& x);

 private:
  ClientStore<nn::ModelState> encoders_;
};

}  // namespace calibre::algos
