#include "algos/fedema.h"

#include <algorithm>

namespace calibre::algos {

fl::ClientUpdate FedEma::local_update(const nn::ModelState& global,
                                      const fl::ClientContext& ctx) {
  nn::ModelState merged = global;
  local_models_.visit(ctx.client_id, [&](const nn::ModelState& local) {
    const float divergence = global.l2_distance(local);
    const float mu =
        std::min(lambda_ * divergence / (global.norm() + 1e-8f), 1.0f);
    // merged = mu * local + (1 - mu) * global.
    merged = local;
    merged.ema_merge(global, mu);
  });
  fl::ClientUpdate update = PflSsl::local_update(merged, ctx);
  local_models_.put(ctx.client_id, update.state);
  return update;
}

double FedEma::personalize(const nn::ModelState& global,
                           const fl::PersonalizationContext& ctx) {
  // Copy the local model out (get, not visit): personalize trains for many
  // steps and must not run under the shard lock.
  if (const auto local = local_models_.get(ctx.client_id)) {
    return PflSsl::personalize(*local, ctx);
  }
  return PflSsl::personalize(global, ctx);
}

}  // namespace calibre::algos
