#include "comm/router.h"

#include "common/check.h"

namespace calibre::comm {

Router::Router(std::size_t num_threads) : pool_(num_threads) {}

void Router::register_endpoint(int endpoint, Handler handler) {
  CALIBRE_CHECK_MSG(endpoint != kServerEndpoint,
                    "server endpoint uses the mailbox, not a handler");
  const auto [it, inserted] = handlers_.emplace(endpoint, std::move(handler));
  CALIBRE_CHECK_MSG(inserted, "endpoint " << endpoint << " already registered");
}

void Router::send(Message message) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(message.wire_size(), std::memory_order_relaxed);
  if (message.receiver == kServerEndpoint) {
    server_mailbox_.push(std::move(message));
    return;
  }
  const auto it = handlers_.find(message.receiver);
  CALIBRE_CHECK_MSG(it != handlers_.end(),
                    "no endpoint registered for client " << message.receiver);
  Handler& handler = it->second;
  // The handler reference stays valid: registration is frozen before sending.
  pool_.submit([&handler, message = std::move(message)]() mutable {
    handler(message);
  });
}

TrafficStats Router::stats() const {
  return TrafficStats{messages_.load(std::memory_order_relaxed),
                      bytes_.load(std::memory_order_relaxed)};
}

}  // namespace calibre::comm
