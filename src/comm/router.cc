#include "comm/router.h"

#include <chrono>
#include <cmath>

#include "comm/serde.h"
#include "common/check.h"

namespace calibre::comm {
namespace {

// SplitMix64-style mix of the fault seed with per-dispatch coordinates;
// independent of rng::Generator so fault draws never perturb experiment
// streams.
std::uint64_t mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                  std::uint64_t c) {
  std::uint64_t z = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                    (b * 0xbf58476d1ce4e5b9ULL) ^ (c * 0x94d049bb133111ebULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Diurnal availability: a pure function of (seed, receiver, round). Each
// receiver gets a stable phase inside the period, so the population's
// offline windows are staggered; within a round the answer never changes
// (retries against an offline device keep failing until the schedule
// flips).
bool endpoint_available(const FaultConfig& fault, int receiver, int round) {
  if (fault.period_rounds <= 0 || fault.duty_cycle >= 1.0f) return true;
  const auto period = static_cast<std::uint64_t>(fault.period_rounds);
  const std::uint64_t phase =
      mix(fault.seed, static_cast<std::uint64_t>(receiver), 0x0FF1CE, 0) %
      period;
  const std::uint64_t pos =
      (static_cast<std::uint64_t>(round) + phase) % period;
  // ceil: a positive duty cycle always yields at least one on-round, so a
  // device class can be flaky without being permanently unreachable.
  const auto on_rounds = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(fault.duty_cycle) *
                static_cast<double>(period)));
  return pos < on_rounds;
}

void validate_fault_config(const FaultConfig& config) {
  CALIBRE_CHECK_MSG(config.failure_rate >= 0.0f && config.failure_rate <= 1.0f,
                    "failure_rate must be in [0, 1], got "
                        << config.failure_rate);
  CALIBRE_CHECK_MSG(config.latency_ms >= 0, "latency_ms must be >= 0");
  CALIBRE_CHECK_MSG(config.duty_cycle > 0.0f && config.duty_cycle <= 1.0f,
                    "duty_cycle must be in (0, 1], got " << config.duty_cycle);
  CALIBRE_CHECK_MSG(config.duty_cycle >= 1.0f || config.period_rounds > 0,
                    "duty_cycle < 1 needs period_rounds > 0");
}

}  // namespace

Router::Router(std::size_t num_threads) : pool_(num_threads) {}

void Router::register_endpoint(int endpoint, Handler handler) {
  CALIBRE_CHECK_MSG(endpoint != kServerEndpoint,
                    "server endpoint uses the mailbox, not a handler");
  const auto [it, inserted] = handlers_.emplace(endpoint, std::move(handler));
  CALIBRE_CHECK_MSG(inserted, "endpoint " << endpoint << " already registered");
}

void Router::register_default_handler(Handler handler) {
  CALIBRE_CHECK_MSG(handler != nullptr, "default handler must be callable");
  CALIBRE_CHECK_MSG(default_handler_ == nullptr,
                    "default handler already registered");
  default_handler_ = std::move(handler);
}

void Router::set_fault_injection(FaultConfig config) {
  validate_fault_config(config);
  fault_ = config;
  if (fault_.latency_ms > 0) ensure_timer();
}

void Router::set_fault_profiles(std::vector<FaultConfig> profiles,
                                std::function<std::size_t(int)> class_of) {
  CALIBRE_CHECK_MSG(!profiles.empty(), "need at least one fault profile");
  CALIBRE_CHECK_MSG(class_of != nullptr, "class_of must be callable");
  for (const FaultConfig& profile : profiles) {
    validate_fault_config(profile);
  }
  fault_profiles_ = std::move(profiles);
  fault_class_of_ = std::move(class_of);
  for (const FaultConfig& profile : fault_profiles_) {
    if (profile.latency_ms > 0) ensure_timer();
  }
}

const FaultConfig& Router::profile_for(int receiver) const {
  if (fault_profiles_.empty()) return fault_;
  return fault_profiles_[fault_class_of_(receiver) % fault_profiles_.size()];
}

void Router::ensure_timer() {
  if (timer_ == nullptr) timer_ = std::make_unique<common::TimerQueue>();
}

void Router::send(Message message) {
  const std::uint64_t wire = message.wire_size();
  messages_.fetch_add(1, std::memory_order_relaxed);
  logical_bytes_.fetch_add(wire, std::memory_order_relaxed);
  const bool to_server = message.receiver == kServerEndpoint;
  (to_server ? collected_bytes_ : broadcast_bytes_)
      .fetch_add(wire, std::memory_order_relaxed);
  // Physical cost: the header always travels; the payload buffer only the
  // first time any message carries it. mark_transmitted() latches exactly
  // once per unique buffer, which also counts distinct serializations.
  std::uint64_t physical = Message::kHeaderBytes;
  if (message.payload.mark_transmitted()) {
    physical += message.payload.size();
    (to_server ? collect_serializations_ : broadcast_serializations_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  physical_bytes_.fetch_add(physical, std::memory_order_relaxed);
  if (message.receiver == kServerEndpoint) {
    server_mailbox_.push(std::move(message));
    return;
  }
  const auto it = handlers_.find(message.receiver);
  CALIBRE_CHECK_MSG(it != handlers_.end() || default_handler_ != nullptr,
                    "no endpoint registered for client " << message.receiver);
  Handler& handler = it != handlers_.end() ? it->second : default_handler_;

  // Roll the fault dice on the sending thread: per-endpoint attempt counters
  // advance in send order, so decisions are deterministic no matter how the
  // pool interleaves execution.
  const FaultConfig& fault = profile_for(message.receiver);
  bool inject_failure = false;
  bool offline = false;
  int delay_ms = 0;
  if (fault.failure_rate > 0.0f || fault.latency_ms > 0 ||
      fault.duty_cycle < 1.0f) {
    std::uint64_t attempt = 0;
    {
      std::lock_guard<std::mutex> lock(attempts_mutex_);
      attempt = attempts_[message.receiver]++;
    }
    const auto receiver = static_cast<std::uint64_t>(message.receiver);
    const auto round = static_cast<std::uint64_t>(message.round);
    offline = !endpoint_available(fault, message.receiver, message.round);
    inject_failure =
        offline ||
        (fault.failure_rate > 0.0f &&
         unit_double(mix(fault.seed, receiver, round, attempt * 2)) <
             static_cast<double>(fault.failure_rate));
    if (fault.latency_ms > 0) {
      delay_ms = static_cast<int>(mix(fault.seed, receiver, round,
                                      attempt * 2 + 1) %
                                  static_cast<std::uint64_t>(
                                      fault.latency_ms + 1));
    }
  }

  // The handler reference stays valid: registration is frozen before sending.
  // A throwing handler (or an injected fault) must never strand the server:
  // every dispatch produces exactly one reply, success or kTrainError.
  auto dispatch = [this, &handler, inject_failure, offline,
                   message = std::move(message)]() mutable {
    const int client = message.receiver;
    const int round = message.round;
    try {
      if (inject_failure) {
        throw std::runtime_error(offline ? kOfflineErrorText
                                         : "injected handler fault");
      }
      handler(message);
    } catch (const std::exception& error) {
      try {
        send(make_error_reply(client, round, error.what()));
      } catch (...) {
        // Server mailbox closed during shutdown; nothing left to notify.
      }
    } catch (...) {
      try {
        send(make_error_reply(client, round, "unknown error"));
      } catch (...) {
      }
    }
  };
  if (delay_ms > 0) {
    // Injected latency must never park a pool worker (a small pool plus a
    // high latency cap would serialize dispatch): the timer holds the
    // dispatch and feeds it to the pool when the delay elapses. The timer
    // exists whenever any profile carries latency (ensure_timer).
    CALIBRE_CHECK_MSG(timer_ != nullptr, "latency injected without a timer");
    timer_->schedule_after(std::chrono::milliseconds(delay_ms),
                           [this, dispatch = std::move(dispatch)]() mutable {
                             pool_.submit(std::move(dispatch));
                           });
    return;
  }
  pool_.submit(std::move(dispatch));
}

TrafficStats operator-(const TrafficStats& end, const TrafficStats& start) {
  TrafficStats out;
  out.messages = end.messages - start.messages;
  out.logical_bytes = end.logical_bytes - start.logical_bytes;
  out.physical_bytes = end.physical_bytes - start.physical_bytes;
  out.broadcast_bytes = end.broadcast_bytes - start.broadcast_bytes;
  out.collected_bytes = end.collected_bytes - start.collected_bytes;
  out.broadcast_serializations =
      end.broadcast_serializations - start.broadcast_serializations;
  out.collect_serializations =
      end.collect_serializations - start.collect_serializations;
  return out;
}

TrafficStats Router::stats() const {
  TrafficStats out;
  out.messages = messages_.load(std::memory_order_relaxed);
  out.logical_bytes = logical_bytes_.load(std::memory_order_relaxed);
  out.physical_bytes = physical_bytes_.load(std::memory_order_relaxed);
  out.broadcast_bytes = broadcast_bytes_.load(std::memory_order_relaxed);
  out.collected_bytes = collected_bytes_.load(std::memory_order_relaxed);
  out.broadcast_serializations =
      broadcast_serializations_.load(std::memory_order_relaxed);
  out.collect_serializations =
      collect_serializations_.load(std::memory_order_relaxed);
  return out;
}

Message Router::make_error_reply(int client, int round,
                                 const std::string& what) {
  Writer writer;
  writer.write_string(what);
  Message reply;
  reply.type = MessageType::kTrainError;
  reply.sender = client;
  reply.receiver = kServerEndpoint;
  reply.round = round;
  reply.payload = writer.take();
  return reply;
}

std::string Router::error_text(const Message& message) {
  CALIBRE_CHECK(message.type == MessageType::kTrainError);
  Reader reader(message.payload.bytes());
  return reader.read_string();
}

}  // namespace calibre::comm
