// Wire codecs for model tensors.
//
// Every model that crosses the server/client boundary is a flat float vector;
// the codec decides how those floats are laid out on the wire:
//
//   f32      tag 0x01 | u64 count | count * f32     (lossless, the default)
//   f16      tag 0x02 | u64 count | count * u16     (IEEE binary16 values)
//   delta16  tag 0x03 | u64 count | count * u16     (f16 of value - base)
//   topk16   tag 0x04 | u64 count | u64 k
//            | k * u32 index (strictly ascending)
//            | k * u16 f16(value - base)            (top-k magnitude deltas)
//   int8a    tag 0x05 | u64 count
//            | ceil(count/256) * (f32 zero | f32 scale)
//            | count * u8                           (block-affine int8)
//
// delta16 and topk16 encode against a reference vector both sides already
// hold (the round's broadcast snapshot), so a client update that stays close
// to the global model quantizes far more accurately than raw f16 at the same
// bytes/element — and topk16 only ships the k largest-magnitude deltas
// (everything else decodes as "unchanged from the reference"). int8a is
// self-contained: each 256-element block stores an affine (zero, scale) pair
// and one byte per element, value ~= zero + scale * q. The tag is part of
// the block, so decoders dispatch on the wire, not on out-of-band
// configuration. All counts are validated against the remaining bytes before
// any allocation (same hardening as Reader), and topk16 index lists are
// validated against the declared count before they are applied.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/serde.h"

namespace calibre::comm {

enum class Codec : std::uint8_t {
  // Config-only value: the per-round adaptive chooser (fl/update_codec.h)
  // picks the cheapest concrete codec meeting the error budget. kAuto never
  // appears on the wire — every encoded block carries a concrete tag.
  kAuto = 0,
  kF32 = 1,      // lossless, bitwise identical run-to-run
  kF16 = 2,      // half-precision quantization
  kDelta16 = 3,  // half-precision delta against a shared reference
  kTopK16 = 4,   // top-k magnitude sparsified f16 deltas against a reference
  kInt8A = 5,    // block-wise affine int8 quantization (self-contained)
};

// "auto" | "f32" | "f16" | "delta16" | "topk16" | "int8a".
std::string codec_name(Codec codec);

// Inverse of codec_name; CHECK-fails (listing the valid set) on anything
// else.
Codec codec_from_name(const std::string& name);

// IEEE 754 binary16 conversion. f32_to_f16 rounds to nearest-even, saturates
// to +-inf past the f16 range, flushes below-subnormal magnitudes to signed
// zero, and preserves inf/NaN.
std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t half);

// Bulk conversions, SIMD-vectorized per-arch like the tensor kernels and
// bit-identical to the scalar functions above on every input. With a non-null
// `base` the encode converts src[i] - base[i] (the delta16 transform) and the
// decode produces base[i] + half, fused into the same pass.
void f32_to_f16_block(const float* src, const float* base, std::uint16_t* dst,
                      std::size_t count);
void f16_to_f32_block(const std::uint16_t* src, const float* base, float* dst,
                      std::size_t count);

// int8a block geometry: one affine (zero, scale) pair per 256 elements.
inline constexpr std::size_t kInt8BlockSize = 256;

// Scalar int8a quantization reference: q = clamp(round((v - zero) *
// inv_scale)) into [0, 255], branchless, NaN mapping to 0. The block
// functions below are SIMD-vectorized and bit-identical to these on every
// input (the clamp/round sequence is chosen so scalar and vector lowering
// agree; codec.cc is compiled with FP contraction off so no path fuses the
// dequant mul-add into an FMA).
std::uint8_t int8a_quantize(float value, float zero, float inv_scale);
float int8a_dequantize(std::uint8_t q, float zero, float scale);

// Bulk int8a conversion for one block (any count), vectorized per-arch.
void int8a_quantize_block(const float* src, float zero, float inv_scale,
                          std::uint8_t* dst, std::size_t count);
void int8a_dequantize_block(const std::uint8_t* src, float zero, float scale,
                            float* dst, std::size_t count);

// Exact byte size of the block encode_values() writes for `count` values.
// `topk` is the sparsifier's k and only read for kTopK16; topk == 0 sizes
// the degraded (reference-less) f16 form that encode_values falls back to.
std::size_t encoded_size(Codec codec, std::size_t count, std::size_t topk = 0);

// Appends a codec block for `values`. delta16/topk16 require `base` with
// `base_size == values.size()`; without a usable reference they degrade to a
// plain f16 block (the tag on the wire says which was written, so decoding
// stays unambiguous). topk16 additionally requires `topk` in [1, count] —
// the number of largest-|value - base| coordinates shipped. f32/f16/int8a
// ignore `base`; kAuto is config-only and CHECK-fails here.
void encode_values(Writer& writer, const std::vector<float>& values,
                   Codec codec, const float* base = nullptr,
                   std::size_t base_size = 0, std::size_t topk = 0);

// Reads one codec block, dispatching on its tag. delta16/topk16 blocks
// require the same reference the encoder used (CHECK-fails otherwise).
// Corrupt tags, counts and index lists fail cleanly via CHECK before
// allocating.
std::vector<float> decode_values(Reader& reader, const float* base = nullptr,
                                 std::size_t base_size = 0);

}  // namespace calibre::comm
