// Wire codecs for model tensors.
//
// Every model that crosses the server/client boundary is a flat float vector;
// the codec decides how those floats are laid out on the wire:
//
//   f32      tag 0x01 | u64 count | count * f32     (lossless, the default)
//   f16      tag 0x02 | u64 count | count * u16     (IEEE binary16 values)
//   delta16  tag 0x03 | u64 count | count * u16     (f16 of value - base)
//
// delta16 encodes against a reference vector both sides already hold (the
// round's broadcast snapshot), so a client update that stays close to the
// global model quantizes far more accurately than raw f16 at the same 2
// bytes/element. The tag is part of the block, so decoders dispatch on the
// wire, not on out-of-band configuration. All counts are validated against
// the remaining bytes before any allocation (same hardening as Reader).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/serde.h"

namespace calibre::comm {

enum class Codec : std::uint8_t {
  kF32 = 1,      // lossless, bitwise identical run-to-run
  kF16 = 2,      // half-precision quantization
  kDelta16 = 3,  // half-precision delta against a shared reference
};

// "f32" | "f16" | "delta16".
std::string codec_name(Codec codec);

// Inverse of codec_name; CHECK-fails on anything else.
Codec codec_from_name(const std::string& name);

// IEEE 754 binary16 conversion. f32_to_f16 rounds to nearest-even, saturates
// to +-inf past the f16 range, flushes below-subnormal magnitudes to signed
// zero, and preserves inf/NaN.
std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t half);

// Bulk conversions, SIMD-vectorized per-arch like the tensor kernels and
// bit-identical to the scalar functions above on every input. With a non-null
// `base` the encode converts src[i] - base[i] (the delta16 transform) and the
// decode produces base[i] + half, fused into the same pass.
void f32_to_f16_block(const float* src, const float* base, std::uint16_t* dst,
                      std::size_t count);
void f16_to_f32_block(const std::uint16_t* src, const float* base, float* dst,
                      std::size_t count);

// Exact byte size of the block encode_values() writes for `count` values.
std::size_t encoded_size(Codec codec, std::size_t count);

// Appends a codec block for `values`. delta16 requires `base` with
// `base_size == values.size()`; without a usable reference it degrades to a
// plain f16 block (the tag on the wire says which was written, so decoding
// stays unambiguous). f32/f16 ignore `base`.
void encode_values(Writer& writer, const std::vector<float>& values,
                   Codec codec, const float* base = nullptr,
                   std::size_t base_size = 0);

// Reads one codec block, dispatching on its tag. A delta16 block requires
// the same reference the encoder used (CHECK-fails otherwise). Corrupt tags
// and counts fail cleanly via CHECK before allocating.
std::vector<float> decode_values(Reader& reader, const float* base = nullptr,
                                 std::size_t base_size = 0);

}  // namespace calibre::comm
