// Shared immutable message payload.
//
// A broadcast sends the same serialized model to K clients. Holding the bytes
// behind a refcounted immutable buffer makes that a single serialization plus
// K refcount bumps instead of K deep copies: the runner builds one Payload
// per round and every train request (including retry re-sends) shares it.
// Immutability is what makes the sharing safe — handlers on the router pool
// read the same buffer concurrently without synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace calibre::comm {

class Payload {
 public:
  Payload() = default;

  // Implicit on purpose: `message.payload = writer.take()` stays the idiom at
  // every producer site. Empty vectors do not allocate a buffer.
  Payload(std::vector<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : buffer_(bytes.empty() ? nullptr
                              : std::make_shared<Buffer>(std::move(bytes))) {}

  const std::vector<std::uint8_t>& bytes() const {
    static const std::vector<std::uint8_t> kEmpty;
    return buffer_ ? buffer_->bytes : kEmpty;
  }
  std::size_t size() const { return buffer_ ? buffer_->bytes.size() : 0; }
  bool empty() const { return size() == 0; }

  // True when `other` shares this payload's underlying buffer (not merely
  // equal bytes).
  bool shares_buffer_with(const Payload& other) const {
    return buffer_ != nullptr && buffer_ == other.buffer_;
  }

  // Number of Payload handles sharing the buffer; 0 for the empty payload.
  long use_count() const { return buffer_.use_count(); }

  // First-transmission latch for physical-traffic accounting: returns true
  // exactly once per underlying buffer across all sharing handles, false on
  // every later call and always for the empty payload. The router uses this
  // to count a shared broadcast buffer's bytes once, no matter how many
  // messages carry it.
  bool mark_transmitted() const {
    return buffer_ != nullptr &&
           !buffer_->transmitted.exchange(true, std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(std::vector<std::uint8_t> b) : bytes(std::move(b)) {}
    const std::vector<std::uint8_t> bytes;
    std::atomic<bool> transmitted{false};
  };

  std::shared_ptr<Buffer> buffer_;
};

}  // namespace calibre::comm
