#include "comm/codec.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.h"

// The vector types below are TU-internal and every use is inlined into the
// target_clones dispatch functions, so the ABI warning about passing wide
// vectors without AVX-512 enabled is noise here (same idiom as
// tensor/kernels.cc).
#pragma GCC diagnostic ignored "-Wpsabi"

namespace calibre::comm {
namespace {

// 16-lane SIMD groups, legalized per target exactly like the tensor
// kernels: one ZMM on AVX-512, two YMM on AVX2, four XMM on baseline SSE2.
typedef float vf32 __attribute__((vector_size(64), aligned(4), may_alias));
typedef std::uint32_t vu32 __attribute__((vector_size(64), aligned(4),
                                          may_alias));
typedef std::uint16_t vu16 __attribute__((vector_size(32), aligned(2),
                                          may_alias));
typedef std::uint8_t vu8 __attribute__((vector_size(16), aligned(1),
                                        may_alias));

constexpr std::size_t kLanes = 16;  // elements per vector group

// ThreadSanitizer cannot coexist with the ifunc resolvers target_clones
// emits, so TSan builds fall back to the default-target body.
#if defined(__SANITIZE_THREAD__)
#define CALIBRE_CODEC_CLONES __attribute__((flatten))
#else
#define CALIBRE_CODEC_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                               "default"), flatten))
#endif

// Branchless f32 -> f16 for one 16-lane group, bit-identical to the scalar
// f32_to_f16 below for every input (RNE ties, subnormals, inf, NaN). The
// subnormal path rides the FPU: adding 0.5f aligns the value's mantissa so
// the float adder performs the shift *and* the round-to-nearest-even in one
// op; the normal path adds the rebias plus 0xFFF (+ the mantissa's odd bit)
// so plain truncation at >> 13 lands on nearest-even.
inline vu16 f32_to_f16_lanes(vu32 bits) {
  const vu32 sign = bits & 0x80000000u;
  const vu32 u = bits ^ sign;
  // Everything at or above 2^16 (the first f32 whose rounded f16 exponent is
  // 31) is inf after saturation; above-inf payloads are NaN and keep a set
  // mantissa bit (0x200) so they cannot decay to inf.
  const vu32 naninf =
      u > 0x7F800000u ? vu32{} + 0x7E00u : vu32{} + 0x7C00u;
  // Subnormal/zero result (value < 2^-14): 0.5f has ulp 2^-24 = one f16
  // subnormal step, so (value + 0.5f) - 0.5f_bits is the rounded mantissa.
  const vf32 half_one = (vf32)(vu32{} + (126u << 23));
  const vu32 sub_out = (vu32)((vf32)u + half_one) - (126u << 23);
  // Normal result: rebias 127 -> 15 ((15-127) << 23 == 0xC8000000), add
  // 0x0FFF plus the pre-round odd bit, truncate.
  const vu32 mant_odd = (u >> 13) & 1u;
  const vu32 norm_out = (u + 0xC8000FFFu + mant_odd) >> 13;
  vu32 out = u < (113u << 23) ? sub_out : norm_out;
  out = u >= ((127u + 16u) << 23) ? naninf : out;
  out |= sign >> 16;
  return __builtin_convertvector(out, vu16);
}

// Branchless f16 -> f32 for one 16-lane group; exact (and therefore
// bit-identical to the scalar f16_to_f32 below). Normals need only a shift
// and a rebias; inf/NaN get a second exponent bump to 0xFF; subnormals are
// renormalized by the FPU via one subtraction of 2^-14.
inline vf32 f16_to_f32_lanes(vu16 halves) {
  const vu32 h = __builtin_convertvector(halves, vu32);
  const vu32 shifted = (h & 0x7FFFu) << 13;
  const vu32 exp = shifted & 0x0F800000u;
  const vu32 o = shifted + ((127u - 15u) << 23);
  const vu32 infnan_out = o + ((128u - 16u) << 23);
  const vf32 magic = (vf32)(vu32{} + (113u << 23));  // 2^-14
  const vu32 sub_out = (vu32)((vf32)(o + (1u << 23)) - magic);
  vu32 out = exp == vu32{} + 0x0F800000u ? infnan_out : o;
  out = exp == vu32{} ? sub_out : out;
  out |= (h & 0x8000u) << 16;
  return (vf32)out;
}

}  // namespace

CALIBRE_CODEC_CLONES
void f32_to_f16_block(const float* src, const float* base, std::uint16_t* dst,
                      std::size_t count) {
  std::size_t i = 0;
  if (base == nullptr) {
    for (; i + kLanes <= count; i += kLanes) {
      *(vu16*)(dst + i) = f32_to_f16_lanes((vu32)*(const vf32*)(src + i));
    }
    for (; i < count; ++i) dst[i] = f32_to_f16(src[i]);
  } else {
    for (; i + kLanes <= count; i += kLanes) {
      const vf32 delta = *(const vf32*)(src + i) - *(const vf32*)(base + i);
      *(vu16*)(dst + i) = f32_to_f16_lanes((vu32)delta);
    }
    for (; i < count; ++i) dst[i] = f32_to_f16(src[i] - base[i]);
  }
}

CALIBRE_CODEC_CLONES
void f16_to_f32_block(const std::uint16_t* src, const float* base, float* dst,
                      std::size_t count) {
  std::size_t i = 0;
  if (base == nullptr) {
    for (; i + kLanes <= count; i += kLanes) {
      *(vf32*)(dst + i) = f16_to_f32_lanes(*(const vu16*)(src + i));
    }
    for (; i < count; ++i) dst[i] = f16_to_f32(src[i]);
  } else {
    for (; i + kLanes <= count; i += kLanes) {
      *(vf32*)(dst + i) =
          *(const vf32*)(base + i) + f16_to_f32_lanes(*(const vu16*)(src + i));
    }
    for (; i < count; ++i) dst[i] = base[i] + f16_to_f32(src[i]);
  }
}

std::uint8_t int8a_quantize(float value, float zero, float inv_scale) {
  // (value - zero) * inv_scale is sub-then-mul — not contractible into an
  // FMA — so scalar and vector lowering agree bit-for-bit. The clamp's
  // ordered comparisons send NaN to 0; +0.5 then truncation rounds
  // half-away-from-zero on the non-negative clamped range.
  float t = (value - zero) * inv_scale;
  t = t > 0.0f ? t : 0.0f;
  t = t < 255.0f ? t : 255.0f;
  return static_cast<std::uint8_t>(static_cast<std::uint32_t>(t + 0.5f));
}

float int8a_dequantize(std::uint8_t q, float zero, float scale) {
  return zero + scale * static_cast<float>(q);
}

CALIBRE_CODEC_CLONES
void int8a_quantize_block(const float* src, float zero, float inv_scale,
                          std::uint8_t* dst, std::size_t count) {
  const vf32 zero_v = vf32{} + zero;
  const vf32 inv_v = vf32{} + inv_scale;
  const vf32 lo_v = vf32{};
  const vf32 hi_v = vf32{} + 255.0f;
  const vf32 half_v = vf32{} + 0.5f;
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    vf32 t = (*(const vf32*)(src + i) - zero_v) * inv_v;
    t = t > lo_v ? t : lo_v;
    t = t < hi_v ? t : hi_v;
    const vu32 q = __builtin_convertvector(t + half_v, vu32);
    *(vu8*)(dst + i) = __builtin_convertvector(q, vu8);
  }
  for (; i < count; ++i) dst[i] = int8a_quantize(src[i], zero, inv_scale);
}

CALIBRE_CODEC_CLONES
void int8a_dequantize_block(const std::uint8_t* src, float zero, float scale,
                            float* dst, std::size_t count) {
  const vf32 zero_v = vf32{} + zero;
  const vf32 scale_v = vf32{} + scale;
  std::size_t i = 0;
  for (; i + kLanes <= count; i += kLanes) {
    const vu32 q = __builtin_convertvector(*(const vu8*)(src + i), vu32);
    *(vf32*)(dst + i) = zero_v + scale_v * __builtin_convertvector(q, vf32);
  }
  for (; i < count; ++i) dst[i] = int8a_dequantize(src[i], zero, scale);
}

namespace {

// Affine parameters for one int8a block: zero = min, scale = range / 255,
// computed in double so the division rounds once. NaNs are skipped by the
// ordered comparisons; a block with no finite values (or any infinity)
// degrades to (0, 0) — every byte quantizes to 0 and dequantizes to 0.
void int8a_block_params(const float* src, std::size_t count, float* zero,
                        float* scale, float* inv_scale) {
  float lo = 0.0f;
  float hi = 0.0f;
  bool seen = false;
  for (std::size_t i = 0; i < count; ++i) {
    const float v = src[i];
    if (v != v) continue;  // NaN
    lo = seen && lo < v ? lo : v;
    hi = seen && hi > v ? hi : v;
    seen = true;
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  if (!seen || !(range >= 0.0) || range > 6.8e38) {  // empty, NaN or inf range
    *zero = 0.0f;
    *scale = 0.0f;
    *inv_scale = 0.0f;
    return;
  }
  *zero = lo;
  *scale = static_cast<float>(range / 255.0);
  *inv_scale = *scale > 0.0f
                   ? static_cast<float>(1.0 / static_cast<double>(*scale))
                   : 0.0f;
}

}  // namespace

std::string codec_name(Codec codec) {
  switch (codec) {
    case Codec::kAuto: return "auto";
    case Codec::kF32: return "f32";
    case Codec::kF16: return "f16";
    case Codec::kDelta16: return "delta16";
    case Codec::kTopK16: return "topk16";
    case Codec::kInt8A: return "int8a";
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
  return {};
}

Codec codec_from_name(const std::string& name) {
  if (name == "auto") return Codec::kAuto;
  if (name == "f32") return Codec::kF32;
  if (name == "f16") return Codec::kF16;
  if (name == "delta16") return Codec::kDelta16;
  if (name == "topk16") return Codec::kTopK16;
  if (name == "int8a") return Codec::kInt8A;
  CALIBRE_CHECK_MSG(false,
                    "unknown wire codec '"
                        << name
                        << "' (expected auto | f32 | f16 | delta16 | topk16 |"
                           " int8a)");
  return Codec::kF32;
}

std::uint16_t f32_to_f16(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {
    // inf stays inf; NaN keeps a set mantissa bit so it cannot decay to inf.
    return sign | 0x7C00u | (mant != 0 ? 0x200u : 0u);
  }
  // Re-bias 127 -> 15.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) return sign | 0x7C00u;  // overflow -> inf
  if (e <= 0) {
    if (e < -10) return sign;  // below the smallest subnormal -> signed zero
    // Subnormal: shift the 24-bit mantissa (implicit bit restored) down to
    // 10 bits, rounding to nearest-even on the dropped remainder.
    mant |= 0x800000u;
    const int shift = 14 - e;  // in [14, 24]
    const std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t out = sign | half;
    if (rem > halfway || (rem == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(out);
  }
  // Normal: round the 23-bit mantissa to 10 bits (nearest-even). A carry out
  // of the mantissa correctly bumps the exponent, up to and including inf.
  std::uint32_t out =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(out);
}

float f16_to_f32(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalize into an f32 with an explicit exponent.
      std::uint32_t e = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((mant & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t encoded_size(Codec codec, std::size_t count, std::size_t topk) {
  const std::size_t header = sizeof(std::uint8_t) + sizeof(std::uint64_t);
  switch (codec) {
    case Codec::kF32:
      return header + count * sizeof(float);
    case Codec::kF16:
    case Codec::kDelta16:
      return header + count * sizeof(std::uint16_t);
    case Codec::kTopK16:
      if (topk == 0) {  // the degraded (reference-less) f16 form
        return header + count * sizeof(std::uint16_t);
      }
      return header + sizeof(std::uint64_t) +
             topk * (sizeof(std::uint32_t) + sizeof(std::uint16_t));
    case Codec::kInt8A: {
      const std::size_t blocks =
          (count + kInt8BlockSize - 1) / kInt8BlockSize;
      return header + blocks * 2 * sizeof(float) + count;
    }
    case Codec::kAuto: break;
  }
  CALIBRE_CHECK_MSG(false, "encoded_size on config-only codec auto");
  return 0;
}

void encode_values(Writer& writer, const std::vector<float>& values,
                   Codec codec, const float* base, std::size_t base_size,
                   std::size_t topk) {
  CALIBRE_CHECK_MSG(codec != Codec::kAuto,
                    "codec auto is config-only; resolve it to a concrete "
                    "codec before encoding");
  if ((codec == Codec::kDelta16 || codec == Codec::kTopK16) &&
      (base == nullptr || base_size != values.size())) {
    // No usable reference (e.g. a payload sized unlike the broadcast):
    // degrade to plain f16. The tag written below keeps decoding unambiguous.
    codec = Codec::kF16;
  }
  writer.write_u8(static_cast<std::uint8_t>(codec));
  switch (codec) {
    case Codec::kF32:
      writer.write_f32_vector(values);
      return;
    case Codec::kF16: {
      std::vector<std::uint16_t> halves(values.size());
      f32_to_f16_block(values.data(), nullptr, halves.data(), values.size());
      writer.write_u16_vector(halves);
      return;
    }
    case Codec::kDelta16: {
      std::vector<std::uint16_t> halves(values.size());
      f32_to_f16_block(values.data(), base, halves.data(), values.size());
      writer.write_u16_vector(halves);
      return;
    }
    case Codec::kTopK16: {
      const std::size_t count = values.size();
      CALIBRE_CHECK_MSG(topk <= count && (topk >= 1 || count == 0),
                        "topk16 k " << topk << " out of [1, " << count << "]");
      std::vector<float> deltas(count);
      std::vector<std::uint32_t> mags(count);
      for (std::size_t i = 0; i < count; ++i) {
        deltas[i] = values[i] - base[i];
        std::uint32_t bits = 0;
        std::memcpy(&bits, &deltas[i], sizeof(bits));
        mags[i] = bits & 0x7FFFFFFFu;
      }
      // Select the k largest-magnitude deltas under a strict total order
      // (|delta| descending, index ascending on ties) so the selection is
      // deterministic. Magnitudes compare as their integer bit patterns —
      // monotone with |float| and well-ordered even for NaN deltas.
      //
      // Sampled-threshold pre-pass: estimate the k-th largest magnitude
      // from a fixed-stride sample and keep only candidates at or above
      // it, so nth_element runs over a few-times-k candidate set instead
      // of the whole tensor. The filter is by magnitude alone, so whenever
      // >= k candidates survive the set provably contains the exact top-k
      // (the k-th largest magnitude is >= the threshold) including every
      // element tied with the k-th — the selection below stays
      // bit-identical to the unfiltered path. If the sample overshoots
      // (< k survivors), fall back to threshold 0, which keeps everything.
      std::uint32_t floor_mag = 0;
      if (count >= 4096 && topk * 4 <= count) {
        constexpr std::size_t kSampleCap = 2048;
        const std::size_t stride =
            count > kSampleCap ? count / kSampleCap : 1;
        std::vector<std::uint32_t> sample;
        sample.reserve(count / stride + 1);
        for (std::size_t i = 0; i < count; i += stride) {
          sample.push_back(mags[i]);
        }
        // Aim at twice the proportional rank so the candidate set lands
        // near 2k elements; rank 0 (the sample max) would filter too hard.
        std::size_t rank = (2 * topk * sample.size()) / count;
        if (rank >= sample.size()) rank = sample.size() - 1;
        std::nth_element(sample.begin(),
                         sample.begin() + static_cast<std::ptrdiff_t>(rank),
                         sample.end(),
                         [](std::uint32_t a, std::uint32_t b) {
                           return a > b;
                         });
        floor_mag = sample[rank];
      }
      std::vector<std::uint32_t> indices;
      indices.reserve(floor_mag != 0 ? std::min(count, topk * 4) : count);
      for (std::size_t i = 0; i < count; ++i) {
        if (mags[i] >= floor_mag) {
          indices.push_back(static_cast<std::uint32_t>(i));
        }
      }
      if (indices.size() < topk) {  // overshoot: take the unfiltered path
        indices.resize(count);
        std::iota(indices.begin(), indices.end(), 0u);
      }
      std::nth_element(indices.begin(),
                       indices.begin() + static_cast<std::ptrdiff_t>(topk),
                       indices.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         const std::uint32_t ma = mags[a];
                         const std::uint32_t mb = mags[b];
                         return ma != mb ? ma > mb : a < b;
                       });
      indices.resize(topk);
      std::sort(indices.begin(), indices.end());  // wire order: ascending
      std::vector<float> selected(topk);
      for (std::size_t j = 0; j < topk; ++j) selected[j] = deltas[indices[j]];
      std::vector<std::uint16_t> halves(topk);
      f32_to_f16_block(selected.data(), nullptr, halves.data(), topk);
      writer.write_u64(count);
      writer.write_u64(topk);
      writer.write_u32_array(indices.data(), topk);
      writer.write_u16_array(halves.data(), topk);
      return;
    }
    case Codec::kInt8A: {
      const std::size_t count = values.size();
      const std::size_t blocks =
          (count + kInt8BlockSize - 1) / kInt8BlockSize;
      writer.write_u64(count);
      std::vector<float> zeros(blocks);
      std::vector<float> scales(blocks);
      std::vector<std::uint8_t> quants(count);
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * kInt8BlockSize;
        const std::size_t len = std::min(kInt8BlockSize, count - begin);
        float inv_scale = 0.0f;
        int8a_block_params(values.data() + begin, len, &zeros[b], &scales[b],
                           &inv_scale);
        int8a_quantize_block(values.data() + begin, zeros[b], inv_scale,
                             quants.data() + begin, len);
        writer.write_f32(zeros[b]);
        writer.write_f32(scales[b]);
      }
      writer.write_u8_array(quants.data(), count);
      return;
    }
    case Codec::kAuto: break;  // rejected above
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
}

std::vector<float> decode_values(Reader& reader, const float* base,
                                 std::size_t base_size) {
  const std::uint8_t tag = reader.read_u8();
  switch (static_cast<Codec>(tag)) {
    case Codec::kF32:
      return reader.read_f32_vector();
    case Codec::kF16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      std::vector<float> values(halves.size());
      f16_to_f32_block(halves.data(), nullptr, values.data(), halves.size());
      return values;
    }
    case Codec::kDelta16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      CALIBRE_CHECK_MSG(base != nullptr,
                        "delta16 block of " << halves.size()
                                            << " values with no reference");
      CALIBRE_CHECK_EQ(base_size, halves.size(),
                       "delta16 reference/block size mismatch");
      std::vector<float> values(halves.size());
      f16_to_f32_block(halves.data(), base, values.data(), halves.size());
      return values;
    }
    case Codec::kTopK16: {
      const std::uint64_t total = reader.read_u64();
      const std::uint64_t k = reader.read_u64();
      // The declared k is validated against the declared total, and both
      // index and value lists are bounded by the remaining bytes, before any
      // allocation happens. The output itself is sized by the *trusted*
      // reference length, never by wire-controlled counts.
      CALIBRE_CHECK_LE(k, total, "topk16 corrupt k");
      CALIBRE_CHECK_MSG(base != nullptr,
                        "topk16 block of " << total
                                           << " values with no reference");
      CALIBRE_CHECK_EQ(base_size, total,
                       "topk16 reference/block size mismatch");
      const std::vector<std::uint32_t> indices = reader.read_u32_array(k);
      const std::vector<std::uint16_t> halves = reader.read_u16_array(k);
      std::vector<float> values(base, base + base_size);
      std::uint64_t prev = 0;
      for (std::uint64_t j = 0; j < k; ++j) {
        const std::uint32_t idx = indices[j];
        CALIBRE_CHECK_MSG(idx < total && (j == 0 || idx > prev),
                          "topk16 corrupt index " << idx << " at " << j);
        values[idx] += f16_to_f32(halves[j]);
        prev = idx;
      }
      return values;
    }
    case Codec::kInt8A: {
      const std::uint64_t count = reader.read_u64();
      // One payload byte per element, so a count past the remaining bytes is
      // corrupt — checked before deriving the block count from it (and long
      // before allocating), keeping the arithmetic below overflow-free.
      CALIBRE_CHECK_LE(count, reader.remaining(), "int8a corrupt count");
      const std::size_t blocks =
          (count + kInt8BlockSize - 1) / kInt8BlockSize;
      CALIBRE_CHECK_LE(blocks * 2 * sizeof(float) + count, reader.remaining(),
                       "int8a truncated block headers");
      std::vector<float> zeros(blocks);
      std::vector<float> scales(blocks);
      for (std::size_t b = 0; b < blocks; ++b) {
        zeros[b] = reader.read_f32();
        scales[b] = reader.read_f32();
      }
      const std::vector<std::uint8_t> quants = reader.read_u8_array(count);
      std::vector<float> values(count);
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t begin = b * kInt8BlockSize;
        const std::size_t len =
            std::min<std::size_t>(kInt8BlockSize, count - begin);
        int8a_dequantize_block(quants.data() + begin, zeros[b], scales[b],
                               values.data() + begin, len);
      }
      return values;
    }
    case Codec::kAuto:
      break;  // tag 0 never appears on a valid wire
  }
  CALIBRE_CHECK_MSG(false, "corrupt codec tag " << static_cast<int>(tag));
  return {};
}

}  // namespace calibre::comm
