#include "comm/codec.h"

#include <cstring>

#include "common/check.h"

// The vector types below are TU-internal and every use is inlined into the
// target_clones dispatch functions, so the ABI warning about passing wide
// vectors without AVX-512 enabled is noise here (same idiom as
// tensor/kernels.cc).
#pragma GCC diagnostic ignored "-Wpsabi"

namespace calibre::comm {
namespace {

// 16-lane SIMD groups, legalized per target exactly like the tensor
// kernels: one ZMM on AVX-512, two YMM on AVX2, four XMM on baseline SSE2.
typedef float vf32 __attribute__((vector_size(64), aligned(4), may_alias));
typedef std::uint32_t vu32 __attribute__((vector_size(64), aligned(4),
                                          may_alias));
typedef std::uint16_t vu16 __attribute__((vector_size(32), aligned(2),
                                          may_alias));

constexpr std::size_t kLanes = 16;  // elements per vector group

// ThreadSanitizer cannot coexist with the ifunc resolvers target_clones
// emits, so TSan builds fall back to the default-target body.
#if defined(__SANITIZE_THREAD__)
#define CALIBRE_CODEC_CLONES __attribute__((flatten))
#else
#define CALIBRE_CODEC_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                               "default"), flatten))
#endif

// Branchless f32 -> f16 for one 16-lane group, bit-identical to the scalar
// f32_to_f16 below for every input (RNE ties, subnormals, inf, NaN). The
// subnormal path rides the FPU: adding 0.5f aligns the value's mantissa so
// the float adder performs the shift *and* the round-to-nearest-even in one
// op; the normal path adds the rebias plus 0xFFF (+ the mantissa's odd bit)
// so plain truncation at >> 13 lands on nearest-even.
inline vu16 f32_to_f16_lanes(vu32 bits) {
  const vu32 sign = bits & 0x80000000u;
  const vu32 u = bits ^ sign;
  // Everything at or above 2^16 (the first f32 whose rounded f16 exponent is
  // 31) is inf after saturation; above-inf payloads are NaN and keep a set
  // mantissa bit (0x200) so they cannot decay to inf.
  const vu32 naninf =
      u > 0x7F800000u ? vu32{} + 0x7E00u : vu32{} + 0x7C00u;
  // Subnormal/zero result (value < 2^-14): 0.5f has ulp 2^-24 = one f16
  // subnormal step, so (value + 0.5f) - 0.5f_bits is the rounded mantissa.
  const vf32 half_one = (vf32)(vu32{} + (126u << 23));
  const vu32 sub_out = (vu32)((vf32)u + half_one) - (126u << 23);
  // Normal result: rebias 127 -> 15 ((15-127) << 23 == 0xC8000000), add
  // 0x0FFF plus the pre-round odd bit, truncate.
  const vu32 mant_odd = (u >> 13) & 1u;
  const vu32 norm_out = (u + 0xC8000FFFu + mant_odd) >> 13;
  vu32 out = u < (113u << 23) ? sub_out : norm_out;
  out = u >= ((127u + 16u) << 23) ? naninf : out;
  out |= sign >> 16;
  return __builtin_convertvector(out, vu16);
}

// Branchless f16 -> f32 for one 16-lane group; exact (and therefore
// bit-identical to the scalar f16_to_f32 below). Normals need only a shift
// and a rebias; inf/NaN get a second exponent bump to 0xFF; subnormals are
// renormalized by the FPU via one subtraction of 2^-14.
inline vf32 f16_to_f32_lanes(vu16 halves) {
  const vu32 h = __builtin_convertvector(halves, vu32);
  const vu32 shifted = (h & 0x7FFFu) << 13;
  const vu32 exp = shifted & 0x0F800000u;
  const vu32 o = shifted + ((127u - 15u) << 23);
  const vu32 infnan_out = o + ((128u - 16u) << 23);
  const vf32 magic = (vf32)(vu32{} + (113u << 23));  // 2^-14
  const vu32 sub_out = (vu32)((vf32)(o + (1u << 23)) - magic);
  vu32 out = exp == vu32{} + 0x0F800000u ? infnan_out : o;
  out = exp == vu32{} ? sub_out : out;
  out |= (h & 0x8000u) << 16;
  return (vf32)out;
}

}  // namespace

CALIBRE_CODEC_CLONES
void f32_to_f16_block(const float* src, const float* base, std::uint16_t* dst,
                      std::size_t count) {
  std::size_t i = 0;
  if (base == nullptr) {
    for (; i + kLanes <= count; i += kLanes) {
      *(vu16*)(dst + i) = f32_to_f16_lanes((vu32)*(const vf32*)(src + i));
    }
    for (; i < count; ++i) dst[i] = f32_to_f16(src[i]);
  } else {
    for (; i + kLanes <= count; i += kLanes) {
      const vf32 delta = *(const vf32*)(src + i) - *(const vf32*)(base + i);
      *(vu16*)(dst + i) = f32_to_f16_lanes((vu32)delta);
    }
    for (; i < count; ++i) dst[i] = f32_to_f16(src[i] - base[i]);
  }
}

CALIBRE_CODEC_CLONES
void f16_to_f32_block(const std::uint16_t* src, const float* base, float* dst,
                      std::size_t count) {
  std::size_t i = 0;
  if (base == nullptr) {
    for (; i + kLanes <= count; i += kLanes) {
      *(vf32*)(dst + i) = f16_to_f32_lanes(*(const vu16*)(src + i));
    }
    for (; i < count; ++i) dst[i] = f16_to_f32(src[i]);
  } else {
    for (; i + kLanes <= count; i += kLanes) {
      *(vf32*)(dst + i) =
          *(const vf32*)(base + i) + f16_to_f32_lanes(*(const vu16*)(src + i));
    }
    for (; i < count; ++i) dst[i] = base[i] + f16_to_f32(src[i]);
  }
}

std::string codec_name(Codec codec) {
  switch (codec) {
    case Codec::kF32: return "f32";
    case Codec::kF16: return "f16";
    case Codec::kDelta16: return "delta16";
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
  return {};
}

Codec codec_from_name(const std::string& name) {
  if (name == "f32") return Codec::kF32;
  if (name == "f16") return Codec::kF16;
  if (name == "delta16") return Codec::kDelta16;
  CALIBRE_CHECK_MSG(false, "unknown wire codec '" << name
                           << "' (expected f32 | f16 | delta16)");
  return Codec::kF32;
}

std::uint16_t f32_to_f16(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {
    // inf stays inf; NaN keeps a set mantissa bit so it cannot decay to inf.
    return sign | 0x7C00u | (mant != 0 ? 0x200u : 0u);
  }
  // Re-bias 127 -> 15.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) return sign | 0x7C00u;  // overflow -> inf
  if (e <= 0) {
    if (e < -10) return sign;  // below the smallest subnormal -> signed zero
    // Subnormal: shift the 24-bit mantissa (implicit bit restored) down to
    // 10 bits, rounding to nearest-even on the dropped remainder.
    mant |= 0x800000u;
    const int shift = 14 - e;  // in [14, 24]
    const std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t out = sign | half;
    if (rem > halfway || (rem == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(out);
  }
  // Normal: round the 23-bit mantissa to 10 bits (nearest-even). A carry out
  // of the mantissa correctly bumps the exponent, up to and including inf.
  std::uint32_t out =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(out);
}

float f16_to_f32(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalize into an f32 with an explicit exponent.
      std::uint32_t e = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((mant & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t encoded_size(Codec codec, std::size_t count) {
  const std::size_t header = sizeof(std::uint8_t) + sizeof(std::uint64_t);
  const std::size_t elem =
      codec == Codec::kF32 ? sizeof(float) : sizeof(std::uint16_t);
  return header + count * elem;
}

void encode_values(Writer& writer, const std::vector<float>& values,
                   Codec codec, const float* base, std::size_t base_size) {
  if (codec == Codec::kDelta16 &&
      (base == nullptr || base_size != values.size())) {
    // No usable reference (e.g. a payload sized unlike the broadcast):
    // degrade to plain f16. The tag written below keeps decoding unambiguous.
    codec = Codec::kF16;
  }
  writer.write_u8(static_cast<std::uint8_t>(codec));
  switch (codec) {
    case Codec::kF32:
      writer.write_f32_vector(values);
      return;
    case Codec::kF16: {
      std::vector<std::uint16_t> halves(values.size());
      f32_to_f16_block(values.data(), nullptr, halves.data(), values.size());
      writer.write_u16_vector(halves);
      return;
    }
    case Codec::kDelta16: {
      std::vector<std::uint16_t> halves(values.size());
      f32_to_f16_block(values.data(), base, halves.data(), values.size());
      writer.write_u16_vector(halves);
      return;
    }
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
}

std::vector<float> decode_values(Reader& reader, const float* base,
                                 std::size_t base_size) {
  const std::uint8_t tag = reader.read_u8();
  switch (static_cast<Codec>(tag)) {
    case Codec::kF32:
      return reader.read_f32_vector();
    case Codec::kF16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      std::vector<float> values(halves.size());
      f16_to_f32_block(halves.data(), nullptr, values.data(), halves.size());
      return values;
    }
    case Codec::kDelta16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      CALIBRE_CHECK_MSG(base != nullptr,
                        "delta16 block of " << halves.size()
                                            << " values with no reference");
      CALIBRE_CHECK_EQ(base_size, halves.size(),
                       "delta16 reference/block size mismatch");
      std::vector<float> values(halves.size());
      f16_to_f32_block(halves.data(), base, values.data(), halves.size());
      return values;
    }
  }
  CALIBRE_CHECK_MSG(false, "corrupt codec tag " << static_cast<int>(tag));
  return {};
}

}  // namespace calibre::comm
