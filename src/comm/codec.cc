#include "comm/codec.h"

#include <cstring>

#include "common/check.h"

namespace calibre::comm {

std::string codec_name(Codec codec) {
  switch (codec) {
    case Codec::kF32: return "f32";
    case Codec::kF16: return "f16";
    case Codec::kDelta16: return "delta16";
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
  return {};
}

Codec codec_from_name(const std::string& name) {
  if (name == "f32") return Codec::kF32;
  if (name == "f16") return Codec::kF16;
  if (name == "delta16") return Codec::kDelta16;
  CALIBRE_CHECK_MSG(false, "unknown wire codec '" << name
                           << "' (expected f32 | f16 | delta16)");
  return Codec::kF32;
}

std::uint16_t f32_to_f16(float value) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t exp = (bits >> 23) & 0xFFu;
  std::uint32_t mant = bits & 0x7FFFFFu;
  if (exp == 0xFFu) {
    // inf stays inf; NaN keeps a set mantissa bit so it cannot decay to inf.
    return sign | 0x7C00u | (mant != 0 ? 0x200u : 0u);
  }
  // Re-bias 127 -> 15.
  const int e = static_cast<int>(exp) - 127 + 15;
  if (e >= 0x1F) return sign | 0x7C00u;  // overflow -> inf
  if (e <= 0) {
    if (e < -10) return sign;  // below the smallest subnormal -> signed zero
    // Subnormal: shift the 24-bit mantissa (implicit bit restored) down to
    // 10 bits, rounding to nearest-even on the dropped remainder.
    mant |= 0x800000u;
    const int shift = 14 - e;  // in [14, 24]
    const std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    std::uint32_t out = sign | half;
    if (rem > halfway || (rem == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(out);
  }
  // Normal: round the 23-bit mantissa to 10 bits (nearest-even). A carry out
  // of the mantissa correctly bumps the exponent, up to and including inf.
  std::uint32_t out =
      sign | (static_cast<std::uint32_t>(e) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;
  return static_cast<std::uint16_t>(out);
}

float f16_to_f32(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u) << 16;
  std::uint32_t exp = (half >> 10) & 0x1Fu;
  std::uint32_t mant = half & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalize into an f32 with an explicit exponent.
      std::uint32_t e = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --e;
      }
      bits = sign | (e << 23) | ((mant & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t encoded_size(Codec codec, std::size_t count) {
  const std::size_t header = sizeof(std::uint8_t) + sizeof(std::uint64_t);
  const std::size_t elem =
      codec == Codec::kF32 ? sizeof(float) : sizeof(std::uint16_t);
  return header + count * elem;
}

void encode_values(Writer& writer, const std::vector<float>& values,
                   Codec codec, const float* base, std::size_t base_size) {
  if (codec == Codec::kDelta16 &&
      (base == nullptr || base_size != values.size())) {
    // No usable reference (e.g. a payload sized unlike the broadcast):
    // degrade to plain f16. The tag written below keeps decoding unambiguous.
    codec = Codec::kF16;
  }
  writer.write_u8(static_cast<std::uint8_t>(codec));
  switch (codec) {
    case Codec::kF32:
      writer.write_f32_vector(values);
      return;
    case Codec::kF16: {
      std::vector<std::uint16_t> halves(values.size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        halves[i] = f32_to_f16(values[i]);
      }
      writer.write_u16_vector(halves);
      return;
    }
    case Codec::kDelta16: {
      std::vector<std::uint16_t> halves(values.size());
      for (std::size_t i = 0; i < values.size(); ++i) {
        halves[i] = f32_to_f16(values[i] - base[i]);
      }
      writer.write_u16_vector(halves);
      return;
    }
  }
  CALIBRE_CHECK_MSG(false, "unknown codec " << static_cast<int>(codec));
}

std::vector<float> decode_values(Reader& reader, const float* base,
                                 std::size_t base_size) {
  const std::uint8_t tag = reader.read_u8();
  switch (static_cast<Codec>(tag)) {
    case Codec::kF32:
      return reader.read_f32_vector();
    case Codec::kF16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      std::vector<float> values(halves.size());
      for (std::size_t i = 0; i < halves.size(); ++i) {
        values[i] = f16_to_f32(halves[i]);
      }
      return values;
    }
    case Codec::kDelta16: {
      const std::vector<std::uint16_t> halves = reader.read_u16_vector();
      CALIBRE_CHECK_MSG(base != nullptr,
                        "delta16 block of " << halves.size()
                                            << " values with no reference");
      CALIBRE_CHECK_EQ(base_size, halves.size(),
                       "delta16 reference/block size mismatch");
      std::vector<float> values(halves.size());
      for (std::size_t i = 0; i < halves.size(); ++i) {
        values[i] = base[i] + f16_to_f32(halves[i]);
      }
      return values;
    }
  }
  CALIBRE_CHECK_MSG(false, "corrupt codec tag " << static_cast<int>(tag));
  return {};
}

}  // namespace calibre::comm
