// In-process message router: the "network" of the federated simulation.
//
// Client endpoints register handlers; messages addressed to them are executed
// on a shared thread pool (each client is an independent device). Messages
// addressed to the server land in the server mailbox, which the round loop
// drains synchronously. Traffic counters expose the communication cost of an
// experiment.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "comm/mailbox.h"
#include "common/thread_pool.h"

namespace calibre::comm {

struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Router {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit Router(std::size_t num_threads);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Registers the handler executed (on the pool) for messages to `endpoint`.
  // Must not be called after sends to that endpoint have started.
  void register_endpoint(int endpoint, Handler handler);

  // Routes `message`: server-addressed messages go to the server mailbox;
  // client-addressed ones are dispatched to the endpoint handler on the pool.
  // Throws when the receiver is unknown.
  void send(Message message);

  // Inbox for messages addressed to kServerEndpoint.
  Mailbox& server_mailbox() { return server_mailbox_; }

  TrafficStats stats() const;

 private:
  common::ThreadPool pool_;
  Mailbox server_mailbox_;
  std::unordered_map<int, Handler> handlers_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace calibre::comm
