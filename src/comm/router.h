// In-process message router: the "network" of the federated simulation.
//
// Client endpoints register handlers; messages addressed to them are executed
// on a shared thread pool (each client is an independent device). Messages
// addressed to the server land in the server mailbox, which the round loop
// drains synchronously. Traffic counters expose the communication cost of an
// experiment.
//
// Fault tolerance: a handler that throws never vanishes silently — the
// router catches the exception and replies to the server with a
// kTrainError message carrying the error text, so the round loop can
// account for the failure instead of blocking forever. An optional fault
// injector (seeded, deterministic) simulates flaky devices by failing a
// configurable fraction of dispatches, adding artificial latency (deferred
// through a TimerQueue, never a pool-thread sleep), and taking endpoints
// offline on a diurnal schedule; heterogeneous device classes map each
// endpoint to its own fault profile.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/mailbox.h"
#include "common/thread_pool.h"
#include "common/timer_queue.h"

namespace calibre::comm {

struct TrafficStats {
  std::uint64_t messages = 0;
  // Logical traffic: every message counted at full wire size — exactly what
  // would cross a real network, shared payloads included once per send.
  std::uint64_t logical_bytes = 0;
  // Physical traffic: headers per message, but each unique payload buffer
  // counted once, no matter how many messages share it. The gap between
  // logical and physical bytes is the zero-copy broadcast's dedup saving.
  std::uint64_t physical_bytes = 0;
  // Logical bytes split by direction.
  std::uint64_t broadcast_bytes = 0;  // server -> clients
  std::uint64_t collected_bytes = 0;  // clients -> server
  // Unique payload buffers that crossed the router, by direction. With the
  // shared broadcast snapshot, broadcast_serializations is 1 per round
  // regardless of how many clients (or retries) the round sends to.
  std::uint64_t broadcast_serializations = 0;
  std::uint64_t collect_serializations = 0;
};

// Component-wise difference (end - start) for per-round accounting.
TrafficStats operator-(const TrafficStats& end, const TrafficStats& start);

// Deterministic fault injection applied to client-addressed dispatches.
// Decisions are a pure function of (seed, receiver, round, attempt), where
// attempt counts dispatches to that endpoint — so a run is reproducible
// bit-for-bit from its seed, and a retry of a failed client re-rolls the
// dice instead of failing forever. (The availability schedule below ignores
// `attempt` on purpose: an offline device stays offline for the whole
// round, so retries against it keep failing until the schedule flips.)
struct FaultConfig {
  float failure_rate = 0.0f;  // P(dispatch fails before the handler runs)
  int latency_ms = 0;         // per-dispatch artificial delay in [0, latency_ms]
  std::uint64_t seed = 0;     // fault stream seed
  // Diurnal availability: with duty_cycle < 1 and period_rounds > 0 the
  // endpoint is offline for the tail of every period_rounds-round cycle,
  // with a per-receiver phase (derived from the seed) so churn is staggered
  // across the population. A dispatch to an offline endpoint fails before
  // the handler runs, with error text kOfflineErrorText. duty_cycle >= 1 or
  // period_rounds <= 0 disables the schedule.
  float duty_cycle = 1.0f;
  int period_rounds = 0;
};

// Error text carried by an availability-schedule failure, distinguishable
// from a random injected fault ("injected handler fault").
inline constexpr const char* kOfflineErrorText = "injected offline";

class Router {
 public:
  using Handler = std::function<void(const Message&)>;

  explicit Router(std::size_t num_threads);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Registers the handler executed (on the pool) for messages to `endpoint`.
  // Must not be called after sends to that endpoint have started.
  void register_endpoint(int endpoint, Handler handler);

  // Registers the fallback handler for any client endpoint with no explicit
  // registration — the virtual-client path: one generic handler (reading the
  // client id from Message::receiver) serves an arbitrary population without
  // O(clients) registration cost or per-client closures. An explicitly
  // registered endpoint still wins. Must be called before sends start.
  void register_default_handler(Handler handler);

  // Enables fault injection for subsequent client-addressed sends.
  // Must not be called concurrently with send().
  void set_fault_injection(FaultConfig config);

  // Heterogeneous device classes: endpoint `e` uses
  // profiles[class_of(e) % profiles.size()]. Overrides any uniform
  // set_fault_injection() config. `class_of` must be pure (called on the
  // sending thread for every dispatch). Must not be called concurrently
  // with send().
  void set_fault_profiles(std::vector<FaultConfig> profiles,
                          std::function<std::size_t(int)> class_of);

  // Routes `message`: server-addressed messages go to the server mailbox;
  // client-addressed ones are dispatched to the endpoint handler on the pool.
  // A handler that throws (or an injected fault) produces a kTrainError
  // reply to the server instead of a lost message.
  // Throws when the receiver is unknown.
  void send(Message message);

  // Inbox for messages addressed to kServerEndpoint.
  Mailbox& server_mailbox() { return server_mailbox_; }

  TrafficStats stats() const;

  // kTrainError reply from `client` for `round`; payload carries `what`.
  static Message make_error_reply(int client, int round,
                                  const std::string& what);
  // Error text carried by a kTrainError message.
  static std::string error_text(const Message& message);

 private:
  // The fault profile governing dispatches to `receiver`.
  const FaultConfig& profile_for(int receiver) const;
  // Lazily creates the delay timer once any profile can inject latency.
  void ensure_timer();

  Mailbox server_mailbox_;
  std::unordered_map<int, Handler> handlers_;
  Handler default_handler_;
  FaultConfig fault_;
  std::vector<FaultConfig> fault_profiles_;       // empty => uniform fault_
  std::function<std::size_t(int)> fault_class_of_;
  std::mutex attempts_mutex_;
  std::unordered_map<int, std::uint64_t> attempts_;  // dispatches per endpoint
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> logical_bytes_{0};
  std::atomic<std::uint64_t> physical_bytes_{0};
  std::atomic<std::uint64_t> broadcast_bytes_{0};
  std::atomic<std::uint64_t> collected_bytes_{0};
  std::atomic<std::uint64_t> broadcast_serializations_{0};
  std::atomic<std::uint64_t> collect_serializations_{0};
  // Destroyed before the rest of the router: ~ThreadPool drains straggler
  // handler tasks (which touch the mailbox and handlers_) first, and the
  // timer — destroyed before even the pool — flushes every delayed dispatch
  // into the pool on its way out, so "one reply per dispatch" survives
  // shutdown.
  common::ThreadPool pool_;
  std::unique_ptr<common::TimerQueue> timer_;  // null until latency is set
};

}  // namespace calibre::comm
