// Minimal binary writer/reader for wire payloads (little-endian host order;
// the simulation never crosses machines, but the format is explicit so it
// could).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace calibre::comm {

class Writer {
 public:
  Writer() = default;
  // Pre-sizes the buffer when the caller knows the payload size up front
  // (ModelState::to_bytes, serialize_update): one allocation, no regrowth.
  explicit Writer(std::size_t expected_bytes) { buffer_.reserve(expected_bytes); }

  void reserve(std::size_t total_bytes) { buffer_.reserve(total_bytes); }

  void write_u8(std::uint8_t value) { buffer_.push_back(value); }
  void write_u16(std::uint16_t value) { write_raw(&value, sizeof(value)); }
  void write_u32(std::uint32_t value) { write_raw(&value, sizeof(value)); }
  void write_u64(std::uint64_t value) { write_raw(&value, sizeof(value)); }
  void write_f32(float value) { write_raw(&value, sizeof(value)); }

  void write_string(const std::string& value) {
    write_u32(static_cast<std::uint32_t>(value.size()));
    write_raw(value.data(), value.size());
  }

  void write_f32_vector(const std::vector<float>& values) {
    write_u64(values.size());
    write_raw(values.data(), values.size() * sizeof(float));
  }

  void write_u16_vector(const std::vector<std::uint16_t>& values) {
    write_u64(values.size());
    write_raw(values.data(), values.size() * sizeof(std::uint16_t));
  }

  // Fixed-count array writes (no length prefix — the caller's wire format
  // already carries the count, e.g. a codec block header).
  void write_u8_array(const std::uint8_t* data, std::size_t count) {
    write_raw(data, count);
  }
  void write_u16_array(const std::uint16_t* data, std::size_t count) {
    write_raw(data, count * sizeof(std::uint16_t));
  }
  void write_u32_array(const std::uint32_t* data, std::size_t count) {
    write_raw(data, count * sizeof(std::uint32_t));
  }

  void write_scalar_map(const std::map<std::string, float>& scalars) {
    write_u32(static_cast<std::uint32_t>(scalars.size()));
    for (const auto& [key, value] : scalars) {
      write_string(key);
      write_f32(value);
    }
  }

  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  void write_raw(const void* data, std::size_t size) {
    if (size == 0) return;  // empty vectors hand us data() == nullptr
    const auto* begin = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), begin, begin + size);
  }

  std::vector<std::uint8_t> buffer_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t read_u8() {
    std::uint8_t value = 0;
    read_raw(&value, sizeof(value));
    return value;
  }
  std::uint16_t read_u16() {
    std::uint16_t value = 0;
    read_raw(&value, sizeof(value));
    return value;
  }
  std::uint32_t read_u32() {
    std::uint32_t value = 0;
    read_raw(&value, sizeof(value));
    return value;
  }
  std::uint64_t read_u64() {
    std::uint64_t value = 0;
    read_raw(&value, sizeof(value));
    return value;
  }
  float read_f32() {
    float value = 0.0f;
    read_raw(&value, sizeof(value));
    return value;
  }

  std::string read_string() {
    const std::uint32_t size = read_u32();
    // Validate against the remaining bytes *before* allocating: a corrupt
    // length must fail cleanly, not request a multi-GB buffer.
    CALIBRE_CHECK_LE(size, remaining(), "serde corrupt string length");
    std::string value(size, '\0');
    read_raw(value.data(), size);
    return value;
  }

  std::vector<float> read_f32_vector() {
    const std::uint64_t count = read_u64();
    // Checked as count <= remaining/4 (not count*4 <= remaining): an
    // untrusted u64 count can wrap the multiplication and slip past the
    // underflow check in read_raw with an absurd allocation.
    CALIBRE_CHECK_LE(count, remaining() / sizeof(float),
                     "serde corrupt f32 count");
    std::vector<float> values(count);
    read_raw(values.data(), count * sizeof(float));
    return values;
  }

  std::vector<std::uint16_t> read_u16_vector() {
    const std::uint64_t count = read_u64();
    // Same wraparound-proof shape as read_f32_vector: bound the count by the
    // remaining bytes before allocating.
    CALIBRE_CHECK_LE(count, remaining() / sizeof(std::uint16_t),
                     "serde corrupt u16 count");
    std::vector<std::uint16_t> values(count);
    read_raw(values.data(), count * sizeof(std::uint16_t));
    return values;
  }

  std::map<std::string, float> read_scalar_map() {
    const std::uint32_t count = read_u32();
    std::map<std::string, float> scalars;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string key = read_string();
      scalars[key] = read_f32();
    }
    return scalars;
  }

  // Fixed-count array reads, guarded like the length-prefixed vectors: the
  // count comes from the caller's (untrusted) wire header, so it is bounded
  // by the remaining bytes *before* any allocation, in the wraparound-proof
  // count <= remaining/elem form.
  std::vector<std::uint8_t> read_u8_array(std::size_t count) {
    CALIBRE_CHECK_LE(count, remaining(), "serde corrupt u8 array count");
    std::vector<std::uint8_t> values(count);
    read_raw(values.data(), count);
    return values;
  }
  std::vector<std::uint16_t> read_u16_array(std::size_t count) {
    CALIBRE_CHECK_LE(count, remaining() / sizeof(std::uint16_t),
                     "serde corrupt u16 array count");
    std::vector<std::uint16_t> values(count);
    read_raw(values.data(), count * sizeof(std::uint16_t));
    return values;
  }
  std::vector<std::uint32_t> read_u32_array(std::size_t count) {
    CALIBRE_CHECK_LE(count, remaining() / sizeof(std::uint32_t),
                     "serde corrupt u32 array count");
    std::vector<std::uint32_t> values(count);
    read_raw(values.data(), count * sizeof(std::uint32_t));
    return values;
  }

  bool exhausted() const { return cursor_ == bytes_.size(); }

  // Bytes not yet consumed. Public so multi-field codec blocks (topk16,
  // int8a) can bound their own derived counts before allocating.
  std::size_t remaining() const { return bytes_.size() - cursor_; }

 private:

  void read_raw(void* out, std::size_t size) {
    CALIBRE_CHECK_LE(size, remaining(),
                     "serde underflow at offset " << cursor_ << "/"
                                                  << bytes_.size());
    if (size == 0) return;  // out (and bytes_.data()) may be null for 0 bytes
    std::memcpy(out, bytes_.data() + cursor_, size);
    cursor_ += size;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace calibre::comm
