// Thread-safe bounded mailbox (MPMC queue of Messages). The server's inbox
// in the federated runtime; also usable per-endpoint.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.h"

namespace calibre::comm {

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 1024) : capacity_(capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Blocks while the mailbox is full (back-pressure); fails on closed box.
  void push(Message message);

  // Blocks until a message is available or the box is closed+empty.
  // Returns nullopt only in the latter case.
  std::optional<Message> pop();

  // Non-blocking pop.
  std::optional<Message> try_pop();

  // Closes the mailbox: pushes throw, pops drain then return nullopt.
  void close();

  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace calibre::comm
