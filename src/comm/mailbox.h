// Thread-safe bounded mailbox (MPMC queue of Messages). The server's inbox
// in the federated runtime; also usable per-endpoint.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.h"

namespace calibre::comm {

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity = 1024) : capacity_(capacity) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Blocks while the mailbox is full (back-pressure); fails on closed box.
  void push(Message message);

  // Blocks until a message is available or the box is closed+empty.
  // Returns nullopt only in the latter case.
  std::optional<Message> pop();

  // Blocks until a message is available, `deadline` passes, or the box is
  // closed+empty. Returns nullopt on timeout or closed+empty — use closed()
  // to tell the two apart.
  std::optional<Message> pop_until(
      std::chrono::steady_clock::time_point deadline);

  // pop_until() relative to now.
  std::optional<Message> pop_for(std::chrono::milliseconds timeout);

  // Non-blocking pop. Returns nullopt when momentarily empty *or* when the
  // box is closed and drained; closed() disambiguates.
  std::optional<Message> try_pop();

  // Closes the mailbox: pushes throw, pops drain then return nullopt.
  void close();

  // True once close() has been called. A nullopt pop on a closed mailbox
  // means shutdown (drained), not starvation.
  bool closed() const;

  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace calibre::comm
