#include "comm/mailbox.h"

#include <stdexcept>

namespace calibre::comm {

void Mailbox::push(Message message) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) {
    throw std::runtime_error("Mailbox::push on closed mailbox");
  }
  queue_.push_back(std::move(message));
  lock.unlock();
  not_empty_.notify_one();
}

std::optional<Message> Mailbox::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message message = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return message;
}

std::optional<Message> Mailbox::pop_until(
    std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!not_empty_.wait_until(lock, deadline,
                             [this] { return closed_ || !queue_.empty(); })) {
    return std::nullopt;  // timed out
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  Message message = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return message;
}

std::optional<Message> Mailbox::pop_for(std::chrono::milliseconds timeout) {
  return pop_until(std::chrono::steady_clock::now() + timeout);
}

std::optional<Message> Mailbox::try_pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty()) return std::nullopt;
  Message message = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return message;
}

void Mailbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool Mailbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace calibre::comm
