// Message types exchanged between the FL server and simulated client devices.
//
// The federated runtime is written against a message-passing boundary: every
// model that crosses between server and client is serialized to bytes and
// routed through comm::Router, exactly as it would be over a network. This
// keeps algorithm implementations honest (no shared mutable model objects)
// and gives the runtime real concurrency.
#pragma once

#include <cstdint>

#include "comm/payload.h"

namespace calibre::comm {

// Endpoint id of the server; clients use their non-negative client id.
inline constexpr int kServerEndpoint = -1;

enum class MessageType : std::uint8_t {
  kTrainRequest = 1,   // server -> client: global state, please run local update
  kTrainResponse = 2,  // client -> server: serialized ClientUpdate
  kShutdown = 3,       // server -> client: stop serving
  kTrainError = 4,     // client -> server: local update failed (payload: what())
};

struct Message {
  MessageType type = MessageType::kTrainRequest;
  int sender = kServerEndpoint;
  int receiver = kServerEndpoint;
  int round = 0;
  // Refcounted immutable buffer: broadcast messages share one serialization.
  Payload payload;

  // Header cost derived from the actual header fields, so traffic accounting
  // stays honest if the struct grows.
  static constexpr std::size_t kHeaderBytes =
      sizeof(type) + sizeof(sender) + sizeof(receiver) + sizeof(round);

  std::size_t wire_size() const { return payload.size() + kHeaderBytes; }
};

}  // namespace calibre::comm
