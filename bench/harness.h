// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary regenerates one of the paper's tables or figures: it
// builds the federated dataset for a (dataset, non-IID setting) pair, runs a
// list of algorithms through fl::run_federated, and prints the same
// rows/series the paper reports, next to the paper's reference numbers where
// available.
//
// Scale knobs (environment variables; defaults chosen so the full suite runs
// on a laptop in minutes — the paper's own scale is 100 clients x 200
// rounds):
//   CALIBRE_TRAIN_CLIENTS   participating clients        (default 20)
//   CALIBRE_NOVEL_CLIENTS   held-out novel clients       (default 10)
//   CALIBRE_ROUNDS          federated rounds             (default 40)
//   CALIBRE_CLIENTS_PER_ROUND  sampled clients per round (default 5)
//   CALIBRE_SAMPLES         train samples per client     (default 100)
//   CALIBRE_TEST_SAMPLES    test samples per client      (default 100)
//   CALIBRE_LOCAL_EPOCHS    local epochs per round       (default 3)
//   CALIBRE_THREADS         device worker threads        (default: cores)
//   CALIBRE_FAST=1          tiny smoke-scale run (CI)
#pragma once

#include <string>
#include <vector>

#include "algos/registry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"
#include "metrics/report.h"

namespace calibre::bench {

// One (dataset, partition) experimental setting.
struct Setting {
  std::string dataset;        // "cifar10" | "cifar100" | "stl10"
  std::string partition;      // "quantity" | "dirichlet"
  int classes_per_client = 2; // S for quantity-based non-IID
  double dirichlet_alpha = 0.3;

  std::string label() const;
};

// Experiment scale resolved from the environment.
struct Scale {
  int train_clients = 20;
  int novel_clients = 10;
  int rounds = 40;
  int clients_per_round = 5;
  int samples_per_client = 100;
  int test_samples_per_client = 100;
  int local_epochs = 3;
  std::uint64_t seed = 42;
};
Scale resolve_scale();

// Builds the synthetic dataset + federated view for a setting.
struct Workbench {
  data::SyntheticDataset synth;
  fl::FedDataset fed;
  fl::FlConfig config;  // fully populated for this setting/scale
};
Workbench build_workbench(const Setting& setting, const Scale& scale);

// Runs one named algorithm (see algos::make_algorithm) on the workbench.
// Script-* algorithms are run with rounds = 0 automatically.
fl::RunResult run_algorithm(const std::string& name, const Workbench& bench,
                            bool personalize_novel = false);

// Runs a pre-built algorithm instance.
fl::RunResult run_algorithm(fl::Algorithm& algorithm, const Workbench& bench,
                            bool personalize_novel = false);

// Convenience: ResultRow from a run (participating-client stats).
metrics::ResultRow to_row(const fl::RunResult& result, double paper_mean = -1,
                          double paper_std = -1, const std::string& note = "");

// Representation-quality measurement for a trained SSL/Calibre state (used
// by the t-SNE figure benches): silhouette/purity/NMI on pooled client
// features, plus a t-SNE embedding exported to CSV under out_dir (pass ""
// to skip the export).
metrics::RepresentationQuality measure_representation(
    const std::string& method_name, const tensor::Tensor& features,
    const std::vector<int>& labels, const std::vector<int>& client_ids,
    const std::string& out_dir);

// Encoder features of `x` for a *supervised* algorithm's final global state
// (handles each algorithm's state layout: full model, encoder-only, or
// SCAFFOLD's [model | control] packing). Not for LG-FedAvg, whose encoders
// are per-client (use its client store directly).
tensor::Tensor supervised_features(const std::string& name,
                                   const nn::ModelState& state,
                                   const fl::FlConfig& config,
                                   const tensor::Tensor& x);

// Pools raw inputs + labels + client ids from the first `num_clients` client
// test shards (capped at `per_client` samples each).
struct PooledSamples {
  tensor::Tensor x;
  std::vector<int> labels;
  std::vector<int> client_ids;
};
PooledSamples pool_client_samples(const fl::FedDataset& fed, int num_clients,
                                  int per_client);

}  // namespace calibre::bench
