#include "bench/harness.h"

#include <cstdio>

#include "cluster/kmeans.h"
#include "cluster/quality.h"
#include "common/check.h"
#include "common/env.h"
#include "flapi/model.h"
#include "metrics/tsne.h"

namespace calibre::bench {

std::string Setting::label() const {
  char buffer[128];
  if (partition == "quantity") {
    std::snprintf(buffer, sizeof(buffer), "%s Q-non-iid (S=%d)",
                  dataset.c_str(), classes_per_client);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%s D-non-iid (alpha=%.1f)",
                  dataset.c_str(), dirichlet_alpha);
  }
  return buffer;
}

Scale resolve_scale() {
  Scale scale;
  if (env::get_flag("CALIBRE_FAST")) {
    scale.train_clients = 6;
    scale.novel_clients = 3;
    scale.rounds = 4;
    scale.clients_per_round = 3;
    scale.samples_per_client = 48;
    scale.test_samples_per_client = 30;
    scale.local_epochs = 1;
  }
  scale.train_clients =
      env::get_int("CALIBRE_TRAIN_CLIENTS", scale.train_clients);
  scale.novel_clients =
      env::get_int("CALIBRE_NOVEL_CLIENTS", scale.novel_clients);
  scale.rounds = env::get_int("CALIBRE_ROUNDS", scale.rounds);
  scale.clients_per_round =
      env::get_int("CALIBRE_CLIENTS_PER_ROUND", scale.clients_per_round);
  scale.samples_per_client =
      env::get_int("CALIBRE_SAMPLES", scale.samples_per_client);
  scale.test_samples_per_client =
      env::get_int("CALIBRE_TEST_SAMPLES", scale.test_samples_per_client);
  scale.local_epochs = env::get_int("CALIBRE_LOCAL_EPOCHS", scale.local_epochs);
  scale.seed = static_cast<std::uint64_t>(env::get_int("CALIBRE_SEED", 42));
  return scale;
}

Workbench build_workbench(const Setting& setting, const Scale& scale) {
  Workbench bench;
  bench.synth = data::make_synthetic(data::preset_by_name(setting.dataset));

  data::PartitionConfig partition_config;
  partition_config.num_clients = scale.train_clients + scale.novel_clients;
  partition_config.samples_per_client = scale.samples_per_client;
  partition_config.test_samples_per_client = scale.test_samples_per_client;
  rng::Generator partition_gen(scale.seed ^ 0x9A87);
  data::Partition partition;
  if (setting.partition == "quantity") {
    partition = data::partition_quantity(
        bench.synth.train, bench.synth.test, partition_config,
        std::min(setting.classes_per_client, bench.synth.train.num_classes),
        partition_gen);
  } else {
    CALIBRE_CHECK_MSG(setting.partition == "dirichlet",
                      "unknown partition: " << setting.partition);
    partition = data::partition_dirichlet(bench.synth.train, bench.synth.test,
                                          partition_config,
                                          setting.dirichlet_alpha,
                                          partition_gen);
  }
  rng::Generator fed_gen(scale.seed ^ 0x517E);
  bench.fed = fl::build_fed_dataset(bench.synth, partition,
                                    scale.train_clients, fed_gen);

  bench.config.encoder.input_dim = bench.synth.train.input_dim();
  bench.config.num_classes = bench.synth.train.num_classes;
  bench.config.rounds = scale.rounds;
  bench.config.clients_per_round = scale.clients_per_round;
  bench.config.local_epochs = scale.local_epochs;
  bench.config.num_train_clients = scale.train_clients;
  bench.config.seed = scale.seed;
  bench.config.ssl_opt.learning_rate = 0.05f;
  bench.config.threads = env::get_int("CALIBRE_THREADS", 0);
  return bench;
}

fl::RunResult run_algorithm(const std::string& name, const Workbench& bench,
                            bool personalize_novel) {
  fl::FlConfig config = bench.config;
  if (name.rfind("Script-", 0) == 0) {
    config.rounds = 0;  // purely local training, no federation
  }
  const auto algorithm = algos::make_algorithm(name, config);
  return fl::run_federated(*algorithm, bench.fed, personalize_novel);
}

fl::RunResult run_algorithm(fl::Algorithm& algorithm, const Workbench& bench,
                            bool personalize_novel) {
  return fl::run_federated(algorithm, bench.fed, personalize_novel);
}

metrics::ResultRow to_row(const fl::RunResult& result, double paper_mean,
                          double paper_std, const std::string& note) {
  metrics::ResultRow row;
  row.method = result.algorithm;
  row.stats = metrics::compute_stats(result.train_accuracies);
  row.paper_mean = paper_mean;
  row.paper_std = paper_std;
  row.note = note;
  return row;
}

metrics::RepresentationQuality measure_representation(
    const std::string& method_name, const tensor::Tensor& features,
    const std::vector<int>& labels, const std::vector<int>& client_ids,
    const std::string& out_dir) {
  metrics::RepresentationQuality quality;
  quality.method = method_name;
  quality.silhouette = cluster::silhouette_score(features, labels);

  rng::Generator gen(0xC1u);
  cluster::KMeansConfig kmeans_config;
  int distinct = 0;
  {
    std::vector<bool> seen(256, false);
    for (const int label : labels) {
      if (label >= 0 && label < 256 && !seen[static_cast<std::size_t>(label)]) {
        seen[static_cast<std::size_t>(label)] = true;
        ++distinct;
      }
    }
  }
  kmeans_config.k = std::max(2, distinct);
  const auto clustering = cluster::kmeans(features, kmeans_config, gen);
  quality.purity = cluster::cluster_purity(clustering.assignments, labels);
  quality.nmi =
      cluster::normalized_mutual_information(clustering.assignments, labels);

  metrics::TsneConfig tsne_config;
  const auto embedding = metrics::tsne(features, tsne_config, gen);
  quality.tsne_kl = embedding.final_kl;
  if (!out_dir.empty()) {
    std::string file = method_name;
    for (char& c : file) {
      if (c == ' ' || c == '(' || c == ')' || c == '/') c = '_';
    }
    metrics::write_embedding_csv(out_dir + "/tsne_" + file + ".csv",
                                 embedding.embedding, labels, client_ids);
  }
  return quality;
}

tensor::Tensor supervised_features(const std::string& name,
                                   const nn::ModelState& state,
                                   const fl::FlConfig& config,
                                   const tensor::Tensor& x) {
  fl::EncoderHeadModel model = fl::make_encoder_head(config, config.seed);
  const bool encoder_only =
      name == "FedPer" || name == "FedRep" || name == "FedBABU";
  if (encoder_only) {
    state.apply_to(model.encoder_parameters());
  } else if (name == "SCAFFOLD" || name == "SCAFFOLD-FT") {
    const std::size_t model_dim =
        nn::ModelState::from_parameters(model.all_parameters()).size();
    CALIBRE_CHECK(state.size() == 2 * model_dim);
    nn::ModelState(std::vector<float>(
                       state.values().begin(),
                       state.values().begin() +
                           static_cast<std::ptrdiff_t>(model_dim)))
        .apply_to(model.all_parameters());
  } else {
    state.apply_to(model.all_parameters());
  }
  return model.encoder->forward(ag::constant(x))->value;
}

PooledSamples pool_client_samples(const fl::FedDataset& fed, int num_clients,
                                  int per_client) {
  PooledSamples pooled;
  std::vector<tensor::Tensor> parts;
  const int clients = std::min(num_clients, fed.num_train_clients());
  for (int c = 0; c < clients; ++c) {
    const data::Dataset& shard = fed.test[static_cast<std::size_t>(c)];
    const int take = std::min<int>(per_client, static_cast<int>(shard.size()));
    std::vector<int> indices(static_cast<std::size_t>(take));
    for (int i = 0; i < take; ++i) indices[static_cast<std::size_t>(i)] = i;
    parts.push_back(tensor::take_rows(shard.x, indices));
    for (int i = 0; i < take; ++i) {
      pooled.labels.push_back(shard.labels[static_cast<std::size_t>(i)]);
      pooled.client_ids.push_back(c);
    }
  }
  pooled.x = tensor::concat_rows(parts);
  return pooled;
}

}  // namespace calibre::bench
