// Figs. 5 & 6 — Calibre's calibration effect on SSL representations.
//
// Fig. 5: pFL-SimSiam / pFL-MoCoV2 vs Calibre (SimSiam) / Calibre (MoCoV2)
// on CIFAR-10-like D-non-IID(0.3) — the Calibre variants should form clearly
// better class clusters (higher silhouette / purity / NMI).
// Fig. 6: Calibre (SimCLR) and Calibre (BYOL) cross-client and per-client
// representations — compare against the fuzzy pFL rows from bench_fig1_fig2.
//
// All embeddings are exported as tsne_*.csv for visual inspection.
#include <iostream>

#include "bench/harness.h"
#include "core/pfl_ssl.h"

using namespace calibre;

int main() {
  const bench::Scale scale = bench::resolve_scale();
  const bench::Setting setting{"cifar10", "dirichlet", 2, 0.3};
  const bench::Workbench workbench = bench::build_workbench(setting, scale);
  const bench::PooledSamples pooled = bench::pool_client_samples(
      workbench.fed, /*num_clients=*/6, /*per_client=*/50);

  std::cout << "Figs. 5 & 6 reproduction — 6/" << scale.train_clients
            << " clients, " << setting.label() << "\n";

  std::vector<metrics::RepresentationQuality> rows;
  for (const std::string& method :
       {std::string("pFL-SimSiam"), std::string("Calibre (SimSiam)"),
        std::string("pFL-MoCoV2"), std::string("Calibre (MoCoV2)"),
        std::string("Calibre (SimCLR)"), std::string("Calibre (BYOL)")}) {
    const auto algorithm = algos::make_algorithm(method, workbench.config);
    auto* pfl = dynamic_cast<core::PflSsl*>(algorithm.get());
    const fl::RunResult result = bench::run_algorithm(*algorithm, workbench);
    const tensor::Tensor features =
        pfl->extract_features(result.final_state, pooled.x);
    rows.push_back(bench::measure_representation(method, features,
                                                 pooled.labels,
                                                 pooled.client_ids, "."));
    std::cout << "  " << method << " done (mean acc "
              << metrics::compute_stats(result.train_accuracies).mean * 100
              << "%)\n";
  }

  metrics::print_quality_table(
      std::cout,
      "Figs. 5 & 6 — Calibre vs plain pFL-SSL representation quality",
      rows);
  std::cout << "Expected shape: each Calibre (X) row dominates its pFL-X row "
               "(paper shows clear clusters after calibration).\n";
  std::cout << "t-SNE embeddings exported to ./tsne_*.csv\n";
  return 0;
}
