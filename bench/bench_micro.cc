// Microbenchmarks of the substrate (google-benchmark): tensor matmul, the
// autograd step, NT-Xent, the Calibre prototype losses, KMeans, model-state
// serialization, and the comm router round-trip. These quantify the cost of
// the building blocks every experiment binary is built from.
//
// In addition to the google-benchmark suite, main() always times the kernel
// layer (blocked GEMM, fused-transpose variants, GEMM-based pairwise
// distances, KMeans assignment, NT-Xent) against the seed's scalar
// reference kernels and dumps a machine-readable BENCH_kernels.json so
// future PRs have a perf trajectory to regress against. Run with
// --benchmark_filter=NONE to get just the JSON dump.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "cluster/kmeans.h"
#include "comm/router.h"
#include "common/thread_pool.h"
#include "core/prototype_loss.h"
#include "fl/algorithm.h"
#include "metrics/tsne.h"
#include "nn/losses.h"
#include "nn/networks.h"
#include "nn/optim.h"
#include "ssl/simclr.h"
#include "tensor/kernels.h"

namespace {

using namespace calibre;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(1);
  const auto a = tensor::Tensor::randn(n, n, gen);
  const auto b = tensor::Tensor::randn(n, n, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

// --- kernel-layer benchmarks --------------------------------------------------

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = state.range(0);
  const auto k = state.range(1);
  const auto m = state.range(2);
  rng::Generator gen(21);
  const auto a = tensor::Tensor::randn(n, k, gen);
  const auto b = tensor::Tensor::randn(k, m, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * k * m);
}
BENCHMARK(BM_GemmBlocked)->Args({256, 512, 512})->Args({128, 128, 128});

void BM_GemmNaive(benchmark::State& state) {
  const auto n = state.range(0);
  const auto k = state.range(1);
  const auto m = state.range(2);
  rng::Generator gen(21);
  const auto a = tensor::Tensor::randn(n, k, gen);
  const auto b = tensor::Tensor::randn(k, m, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::kernels::matmul_naive(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * k * m);
}
BENCHMARK(BM_GemmNaive)->Args({256, 512, 512})->Args({128, 128, 128});

void BM_GemmNT(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(22);
  const auto a = tensor::Tensor::randn(n, 512, gen);
  const auto b = tensor::Tensor::randn(n, 512, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * 512 * n);
}
BENCHMARK(BM_GemmNT)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(23);
  const auto a = tensor::Tensor::randn(512, n, gen);
  const auto b = tensor::Tensor::randn(512, n, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * 512 * n);
}
BENCHMARK(BM_GemmTN)->Arg(256);

void BM_PairwiseSqDists(benchmark::State& state) {
  rng::Generator gen(24);
  const auto points = tensor::Tensor::randn(2048, 128, gen);
  const auto centroids = tensor::Tensor::randn(10, 128, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::pairwise_sq_dists(points, centroids));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 2048 * 128 * 10);
}
BENCHMARK(BM_PairwiseSqDists);

void BM_KMeansAssign(benchmark::State& state) {
  rng::Generator gen(25);
  const auto points = tensor::Tensor::randn(2048, 128, gen);
  const auto centroids = tensor::Tensor::randn(10, 128, gen);
  for (auto _ : state) {
    float mean_distance = 0.0f;
    benchmark::DoNotOptimize(
        cluster::assign_to_centroids(points, centroids, &mean_distance));
  }
  state.SetItemsProcessed(state.iterations() * 2048 * 10);
}
BENCHMARK(BM_KMeansAssign);

void BM_NtXentForwardBackward(benchmark::State& state) {
  const auto batch = state.range(0);
  rng::Generator gen(2);
  const auto h = tensor::Tensor::randn(2 * batch, 32, gen);
  for (auto _ : state) {
    const ag::VarPtr leaf = ag::parameter(h);
    const ag::VarPtr loss = nn::ntxent(leaf, 0.5f);
    ag::backward(loss);
    benchmark::DoNotOptimize(leaf->grad);
  }
}
BENCHMARK(BM_NtXentForwardBackward)->Arg(32)->Arg(128);

void BM_EncoderTrainStep(benchmark::State& state) {
  rng::Generator gen(3);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  nn::Sgd optimizer(encoder.parameters(), {0.05f, 0.9f, 1e-4f});
  const auto x = tensor::Tensor::randn(32, config.input_dim, gen);
  const auto target = tensor::Tensor::randn(32, config.feature_dim, gen);
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(ag::mse(encoder.forward(ag::constant(x)), target));
    optimizer.step();
  }
}
BENCHMARK(BM_EncoderTrainStep);

void BM_SimClrLossStep(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 4);
  rng::Generator gen(5);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  nn::Sgd optimizer(method.trainable_parameters(), {0.05f, 0.9f, 0.0f});
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(method.forward(v1, v2).loss);
    optimizer.step();
  }
}
BENCHMARK(BM_SimClrLossStep);

void BM_CalibrePrototypeLosses(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 6);
  rng::Generator gen(7);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const ssl::SslForward fwd = method.forward(v1, v2);
  core::PrototypeLossConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_prototype_losses(fwd, config, gen));
  }
}
BENCHMARK(BM_CalibrePrototypeLosses);

void BM_KMeans(benchmark::State& state) {
  rng::Generator gen(8);
  const auto points = tensor::Tensor::randn(state.range(0), 64, gen);
  cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(points, config, gen));
  }
}
BENCHMARK(BM_KMeans)->Arg(64)->Arg(512);

void BM_ModelStateSerialize(benchmark::State& state) {
  rng::Generator gen(9);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  const auto model_state =
      nn::ModelState::from_parameters(encoder.parameters());
  for (auto _ : state) {
    const auto bytes = model_state.to_bytes();
    benchmark::DoNotOptimize(nn::ModelState::from_bytes(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(model_state.size()) * 4);
}
BENCHMARK(BM_ModelStateSerialize);

void BM_RouterRoundTrip(benchmark::State& state) {
  comm::Router router(2);
  router.register_endpoint(0, [&](const comm::Message& request) {
    comm::Message response;
    response.type = comm::MessageType::kTrainResponse;
    response.sender = 0;
    response.receiver = comm::kServerEndpoint;
    response.payload = request.payload;
    router.send(std::move(response));
  });
  std::vector<std::uint8_t> payload(64 * 1024, 0xAB);
  for (auto _ : state) {
    comm::Message request;
    request.type = comm::MessageType::kTrainRequest;
    request.receiver = 0;
    request.payload = payload;
    router.send(std::move(request));
    benchmark::DoNotOptimize(router.server_mailbox().pop());
  }
  state.SetBytesProcessed(state.iterations() * 2 * 64 * 1024);
}
BENCHMARK(BM_RouterRoundTrip);

void BM_Tsne(benchmark::State& state) {
  rng::Generator gen(10);
  const auto points = tensor::Tensor::randn(100, 32, gen);
  metrics::TsneConfig config;
  config.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::tsne(points, config, gen));
  }
}
BENCHMARK(BM_Tsne);

// --- BENCH_kernels.json -------------------------------------------------------
//
// Timed head-to-head of the blocked kernel layer against the seed's scalar
// reference kernels (preserved verbatim in tensor/kernels.cc). Written on
// every run so the perf trajectory is machine-readable across PRs.

struct KernelEntry {
  std::string name;
  double flops = 0.0;          // useful flops per call (0 = not a flop kernel)
  double seconds = 0.0;        // best-of-reps wall time, optimized kernel
  double baseline_seconds = 0.0;  // best-of-reps wall time, seed scalar kernel
};

// Best-of-`reps` wall time of fn(), with one warmup call. Best-of is the
// right statistic on a shared machine: noise only ever adds time.
double time_best(const std::function<void()>& fn, int reps) {
  fn();  // warmup
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

// The seed's KMeans assignment: per-pair bounds-checked scalar loops, kept
// here as the baseline the blocked GEMM path is measured against.
std::vector<int> assign_naive(const tensor::Tensor& points,
                              const tensor::Tensor& centroids) {
  const tensor::Tensor dists =
      tensor::kernels::pairwise_sq_dists_naive(points, centroids);
  std::vector<int> assignments(static_cast<std::size_t>(points.rows()), 0);
  for (std::int64_t i = 0; i < dists.rows(); ++i) {
    float best = dists(i, 0);
    int arg = 0;
    for (std::int64_t c = 1; c < dists.cols(); ++c) {
      if (dists(i, c) < best) {
        best = dists(i, c);
        arg = static_cast<int>(c);
      }
    }
    assignments[static_cast<std::size_t>(i)] = arg;
  }
  return assignments;
}

void dump_kernel_json(const char* path) {
  rng::Generator gen(97);
  std::vector<KernelEntry> entries;

  // GEMM 256x512x512 — the ISSUE acceptance shape (target >=3x vs seed).
  {
    const auto a = tensor::Tensor::randn(256, 512, gen);
    const auto b = tensor::Tensor::randn(512, 512, gen);
    KernelEntry e;
    e.name = "gemm_256x512x512";
    e.flops = 2.0 * 256 * 512 * 512;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::kernels::matmul_naive(a, b)); },
        3);
    entries.push_back(e);
  }

  // Fused-transpose variants vs transpose-copy + naive GEMM (what the
  // autograd backward passes did before the kernel layer).
  {
    const auto a = tensor::Tensor::randn(256, 512, gen);
    const auto b = tensor::Tensor::randn(256, 512, gen);
    KernelEntry e;
    e.name = "matmul_nt_256x512x256";
    e.flops = 2.0 * 256 * 512 * 256;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul_nt(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              tensor::kernels::matmul_naive(a, tensor::transpose(b)));
        },
        3);
    entries.push_back(e);
  }
  {
    const auto a = tensor::Tensor::randn(512, 256, gen);
    const auto b = tensor::Tensor::randn(512, 256, gen);
    KernelEntry e;
    e.name = "matmul_tn_256x512x256";
    e.flops = 2.0 * 256 * 512 * 256;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul_tn(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              tensor::kernels::matmul_naive(tensor::transpose(a), b));
        },
        3);
    entries.push_back(e);
  }

  // Pairwise squared distances + KMeans assignment on the ISSUE acceptance
  // shape: 2048 points x 128 dims vs 10 centroids (target >=2x vs seed).
  {
    const auto points = tensor::Tensor::randn(2048, 128, gen);
    const auto centroids = tensor::Tensor::randn(10, 128, gen);
    {
      KernelEntry e;
      e.name = "pairwise_sq_dists_2048x128_k10";
      e.flops = 2.0 * 2048 * 128 * 10;
      e.seconds = time_best(
          [&] {
            benchmark::DoNotOptimize(
                tensor::pairwise_sq_dists(points, centroids));
          },
          7);
      e.baseline_seconds = time_best(
          [&] {
            benchmark::DoNotOptimize(
                tensor::kernels::pairwise_sq_dists_naive(points, centroids));
          },
          5);
      entries.push_back(e);
    }
    {
      KernelEntry e;
      e.name = "kmeans_assign_2048x128_k10";
      e.flops = 2.0 * 2048 * 128 * 10;
      e.seconds = time_best(
          [&] {
            float mean_distance = 0.0f;
            benchmark::DoNotOptimize(
                cluster::assign_to_centroids(points, centroids,
                                             &mean_distance));
          },
          7);
      e.baseline_seconds = time_best(
          [&] { benchmark::DoNotOptimize(assign_naive(points, centroids)); },
          5);
      entries.push_back(e);
    }
  }

  // NT-Xent forward+backward trajectory entry (no scalar baseline kept for
  // the full graph; baseline_seconds = 0 means "trajectory only").
  {
    rng::Generator g2(98);
    const auto h = tensor::Tensor::randn(256, 64, g2);
    KernelEntry e;
    e.name = "ntxent_fwd_bwd_256x64";
    e.seconds = time_best(
        [&] {
          const ag::VarPtr leaf = ag::parameter(h);
          const ag::VarPtr loss = nn::ntxent(leaf, 0.5f);
          ag::backward(loss);
          benchmark::DoNotOptimize(leaf->grad);
        },
        5);
    entries.push_back(e);
  }

  std::ofstream out(path);
  out << "{\n  \"generated_by\": \"bench_micro\",\n  \"threads\": "
      << common::ThreadPool::default_parallelism() << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const KernelEntry& e = entries[i];
    const double gflops =
        e.seconds > 0.0 && e.flops > 0.0 ? e.flops / e.seconds / 1e9 : 0.0;
    const double baseline_gflops =
        e.baseline_seconds > 0.0 && e.flops > 0.0
            ? e.flops / e.baseline_seconds / 1e9
            : 0.0;
    const double speedup =
        e.seconds > 0.0 && e.baseline_seconds > 0.0
            ? e.baseline_seconds / e.seconds
            : 0.0;
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"flops\": %.0f, "
                  "\"seconds\": %.6e, \"gflops\": %.3f, "
                  "\"baseline_seconds\": %.6e, \"baseline_gflops\": %.3f, "
                  "\"speedup\": %.2f}%s\n",
                  e.name.c_str(), e.flops, e.seconds, gflops,
                  e.baseline_seconds, baseline_gflops, speedup,
                  i + 1 < entries.size() ? "," : "");
    out << buffer;
    std::printf("[kernels] %-32s %8.3f GFLOP/s  (baseline %8.3f, %.2fx)\n",
                e.name.c_str(), gflops, baseline_gflops, speedup);
  }
  out << "  ]\n}\n";
  std::printf("[kernels] wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dump_kernel_json("BENCH_kernels.json");
  return 0;
}
