// Microbenchmarks of the substrate (google-benchmark): tensor matmul, the
// autograd step, NT-Xent, the Calibre prototype losses, KMeans, model-state
// serialization, and the comm router round-trip. These quantify the cost of
// the building blocks every experiment binary is built from.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "cluster/kmeans.h"
#include "comm/router.h"
#include "core/prototype_loss.h"
#include "fl/algorithm.h"
#include "metrics/tsne.h"
#include "nn/losses.h"
#include "nn/networks.h"
#include "nn/optim.h"
#include "ssl/simclr.h"

namespace {

using namespace calibre;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(1);
  const auto a = tensor::Tensor::randn(n, n, gen);
  const auto b = tensor::Tensor::randn(n, n, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

void BM_NtXentForwardBackward(benchmark::State& state) {
  const auto batch = state.range(0);
  rng::Generator gen(2);
  const auto h = tensor::Tensor::randn(2 * batch, 32, gen);
  for (auto _ : state) {
    const ag::VarPtr leaf = ag::parameter(h);
    const ag::VarPtr loss = nn::ntxent(leaf, 0.5f);
    ag::backward(loss);
    benchmark::DoNotOptimize(leaf->grad);
  }
}
BENCHMARK(BM_NtXentForwardBackward)->Arg(32)->Arg(128);

void BM_EncoderTrainStep(benchmark::State& state) {
  rng::Generator gen(3);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  nn::Sgd optimizer(encoder.parameters(), {0.05f, 0.9f, 1e-4f});
  const auto x = tensor::Tensor::randn(32, config.input_dim, gen);
  const auto target = tensor::Tensor::randn(32, config.feature_dim, gen);
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(ag::mse(encoder.forward(ag::constant(x)), target));
    optimizer.step();
  }
}
BENCHMARK(BM_EncoderTrainStep);

void BM_SimClrLossStep(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 4);
  rng::Generator gen(5);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  nn::Sgd optimizer(method.trainable_parameters(), {0.05f, 0.9f, 0.0f});
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(method.forward(v1, v2).loss);
    optimizer.step();
  }
}
BENCHMARK(BM_SimClrLossStep);

void BM_CalibrePrototypeLosses(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 6);
  rng::Generator gen(7);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const ssl::SslForward fwd = method.forward(v1, v2);
  core::PrototypeLossConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_prototype_losses(fwd, config, gen));
  }
}
BENCHMARK(BM_CalibrePrototypeLosses);

void BM_KMeans(benchmark::State& state) {
  rng::Generator gen(8);
  const auto points = tensor::Tensor::randn(state.range(0), 64, gen);
  cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(points, config, gen));
  }
}
BENCHMARK(BM_KMeans)->Arg(64)->Arg(512);

void BM_ModelStateSerialize(benchmark::State& state) {
  rng::Generator gen(9);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  const auto model_state =
      nn::ModelState::from_parameters(encoder.parameters());
  for (auto _ : state) {
    const auto bytes = model_state.to_bytes();
    benchmark::DoNotOptimize(nn::ModelState::from_bytes(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(model_state.size()) * 4);
}
BENCHMARK(BM_ModelStateSerialize);

void BM_RouterRoundTrip(benchmark::State& state) {
  comm::Router router(2);
  router.register_endpoint(0, [&](const comm::Message& request) {
    comm::Message response;
    response.type = comm::MessageType::kTrainResponse;
    response.sender = 0;
    response.receiver = comm::kServerEndpoint;
    response.payload = request.payload;
    router.send(std::move(response));
  });
  std::vector<std::uint8_t> payload(64 * 1024, 0xAB);
  for (auto _ : state) {
    comm::Message request;
    request.type = comm::MessageType::kTrainRequest;
    request.receiver = 0;
    request.payload = payload;
    router.send(std::move(request));
    benchmark::DoNotOptimize(router.server_mailbox().pop());
  }
  state.SetBytesProcessed(state.iterations() * 2 * 64 * 1024);
}
BENCHMARK(BM_RouterRoundTrip);

void BM_Tsne(benchmark::State& state) {
  rng::Generator gen(10);
  const auto points = tensor::Tensor::randn(100, 32, gen);
  metrics::TsneConfig config;
  config.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::tsne(points, config, gen));
  }
}
BENCHMARK(BM_Tsne);

}  // namespace

BENCHMARK_MAIN();
