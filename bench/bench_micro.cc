// Microbenchmarks of the substrate (google-benchmark): tensor matmul, the
// autograd step, NT-Xent, the Calibre prototype losses, KMeans, model-state
// serialization, and the comm router round-trip. These quantify the cost of
// the building blocks every experiment binary is built from.
//
// In addition to the google-benchmark suite, main() always times the kernel
// layer (blocked GEMM, fused-transpose variants, GEMM-based pairwise
// distances, KMeans assignment, NT-Xent) against the seed's scalar
// reference kernels and dumps a machine-readable BENCH_kernels.json so
// future PRs have a perf trajectory to regress against. Run with
// --benchmark_filter=NONE to get just the JSON dump.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "cluster/kmeans.h"
#include "comm/codec.h"
#include "comm/router.h"
#include "common/thread_pool.h"
#include "core/pfl_ssl.h"
#include "core/prototype_loss.h"
#include "flapi/algorithm.h"
#include "metrics/tsne.h"
#include "nn/losses.h"
#include "nn/networks.h"
#include "nn/optim.h"
#include "ssl/simclr.h"
#include "tensor/kernels.h"
#include "tensor/pool.h"

namespace {

using namespace calibre;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(1);
  const auto a = tensor::Tensor::randn(n, n, gen);
  const auto b = tensor::Tensor::randn(n, n, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

// --- kernel-layer benchmarks --------------------------------------------------

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = state.range(0);
  const auto k = state.range(1);
  const auto m = state.range(2);
  rng::Generator gen(21);
  const auto a = tensor::Tensor::randn(n, k, gen);
  const auto b = tensor::Tensor::randn(k, m, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * k * m);
}
BENCHMARK(BM_GemmBlocked)->Args({256, 512, 512})->Args({128, 128, 128});

void BM_GemmNaive(benchmark::State& state) {
  const auto n = state.range(0);
  const auto k = state.range(1);
  const auto m = state.range(2);
  rng::Generator gen(21);
  const auto a = tensor::Tensor::randn(n, k, gen);
  const auto b = tensor::Tensor::randn(k, m, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::kernels::matmul_naive(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * k * m);
}
BENCHMARK(BM_GemmNaive)->Args({256, 512, 512})->Args({128, 128, 128});

void BM_GemmNT(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(22);
  const auto a = tensor::Tensor::randn(n, 512, gen);
  const auto b = tensor::Tensor::randn(n, 512, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * 512 * n);
}
BENCHMARK(BM_GemmNT)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  const auto n = state.range(0);
  rng::Generator gen(23);
  const auto a = tensor::Tensor::randn(512, n, gen);
  const auto b = tensor::Tensor::randn(512, n, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_tn(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * 512 * n);
}
BENCHMARK(BM_GemmTN)->Arg(256);

void BM_PairwiseSqDists(benchmark::State& state) {
  rng::Generator gen(24);
  const auto points = tensor::Tensor::randn(2048, 128, gen);
  const auto centroids = tensor::Tensor::randn(10, 128, gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::pairwise_sq_dists(points, centroids));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 2048 * 128 * 10);
}
BENCHMARK(BM_PairwiseSqDists);

void BM_KMeansAssign(benchmark::State& state) {
  rng::Generator gen(25);
  const auto points = tensor::Tensor::randn(2048, 128, gen);
  const auto centroids = tensor::Tensor::randn(10, 128, gen);
  for (auto _ : state) {
    float mean_distance = 0.0f;
    benchmark::DoNotOptimize(
        cluster::assign_to_centroids(points, centroids, &mean_distance));
  }
  state.SetItemsProcessed(state.iterations() * 2048 * 10);
}
BENCHMARK(BM_KMeansAssign);

void BM_NtXentForwardBackward(benchmark::State& state) {
  const auto batch = state.range(0);
  rng::Generator gen(2);
  const auto h = tensor::Tensor::randn(2 * batch, 32, gen);
  for (auto _ : state) {
    const ag::VarPtr leaf = ag::parameter(h);
    const ag::VarPtr loss = nn::ntxent(leaf, 0.5f);
    ag::backward(loss);
    benchmark::DoNotOptimize(leaf->grad);
  }
}
BENCHMARK(BM_NtXentForwardBackward)->Arg(32)->Arg(128);

void BM_EncoderTrainStep(benchmark::State& state) {
  rng::Generator gen(3);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  nn::Sgd optimizer(encoder.parameters(), {0.05f, 0.9f, 1e-4f});
  const auto x = tensor::Tensor::randn(32, config.input_dim, gen);
  const auto target = tensor::Tensor::randn(32, config.feature_dim, gen);
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(ag::mse(encoder.forward(ag::constant(x)), target));
    optimizer.step();
  }
}
BENCHMARK(BM_EncoderTrainStep);

void BM_SimClrLossStep(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 4);
  rng::Generator gen(5);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  nn::Sgd optimizer(method.trainable_parameters(), {0.05f, 0.9f, 0.0f});
  for (auto _ : state) {
    optimizer.zero_grad();
    ag::backward(method.forward(v1, v2).loss);
    optimizer.step();
  }
}
BENCHMARK(BM_SimClrLossStep);

void BM_CalibrePrototypeLosses(benchmark::State& state) {
  nn::EncoderConfig encoder_config;
  ssl::SslConfig ssl_config;
  ssl::SimClr method(encoder_config, ssl_config, 6);
  rng::Generator gen(7);
  const auto v1 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const auto v2 = tensor::Tensor::randn(32, encoder_config.input_dim, gen);
  const ssl::SslForward fwd = method.forward(v1, v2);
  core::PrototypeLossConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::compute_prototype_losses(fwd, config, gen));
  }
}
BENCHMARK(BM_CalibrePrototypeLosses);

void BM_KMeans(benchmark::State& state) {
  rng::Generator gen(8);
  const auto points = tensor::Tensor::randn(state.range(0), 64, gen);
  cluster::KMeansConfig config;
  config.k = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(points, config, gen));
  }
}
BENCHMARK(BM_KMeans)->Arg(64)->Arg(512);

void BM_ModelStateSerialize(benchmark::State& state) {
  rng::Generator gen(9);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  const auto model_state =
      nn::ModelState::from_parameters(encoder.parameters());
  for (auto _ : state) {
    const auto bytes = model_state.to_bytes();
    benchmark::DoNotOptimize(nn::ModelState::from_bytes(bytes));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(model_state.size()) * 4);
}
BENCHMARK(BM_ModelStateSerialize);

void BM_RouterRoundTrip(benchmark::State& state) {
  comm::Router router(2);
  router.register_endpoint(0, [&](const comm::Message& request) {
    comm::Message response;
    response.type = comm::MessageType::kTrainResponse;
    response.sender = 0;
    response.receiver = comm::kServerEndpoint;
    response.payload = request.payload;
    router.send(std::move(response));
  });
  std::vector<std::uint8_t> payload(64 * 1024, 0xAB);
  for (auto _ : state) {
    comm::Message request;
    request.type = comm::MessageType::kTrainRequest;
    request.receiver = 0;
    request.payload = payload;
    router.send(std::move(request));
    benchmark::DoNotOptimize(router.server_mailbox().pop());
  }
  state.SetBytesProcessed(state.iterations() * 2 * 64 * 1024);
}
BENCHMARK(BM_RouterRoundTrip);

void BM_Tsne(benchmark::State& state) {
  rng::Generator gen(10);
  const auto points = tensor::Tensor::randn(100, 32, gen);
  metrics::TsneConfig config;
  config.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::tsne(points, config, gen));
  }
}
BENCHMARK(BM_Tsne);

// --- BENCH_kernels.json -------------------------------------------------------
//
// Timed head-to-head of the blocked kernel layer against the seed's scalar
// reference kernels (preserved verbatim in tensor/kernels.cc). Written on
// every run so the perf trajectory is machine-readable across PRs.

struct KernelEntry {
  std::string name;
  double flops = 0.0;          // useful flops per call (0 = not a flop kernel)
  double seconds = 0.0;        // best-of-reps wall time, optimized kernel
  double baseline_seconds = 0.0;  // best-of-reps wall time, seed scalar kernel
};

// Best-of-`reps` wall time of fn(), with one warmup call. Best-of is the
// right statistic on a shared machine: noise only ever adds time.
double time_best(const std::function<void()>& fn, int reps) {
  fn();  // warmup
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

// The seed's KMeans assignment: per-pair bounds-checked scalar loops, kept
// here as the baseline the blocked GEMM path is measured against.
std::vector<int> assign_naive(const tensor::Tensor& points,
                              const tensor::Tensor& centroids) {
  const tensor::Tensor dists =
      tensor::kernels::pairwise_sq_dists_naive(points, centroids);
  std::vector<int> assignments(static_cast<std::size_t>(points.rows()), 0);
  for (std::int64_t i = 0; i < dists.rows(); ++i) {
    float best = dists(i, 0);
    int arg = 0;
    for (std::int64_t c = 1; c < dists.cols(); ++c) {
      if (dists(i, c) < best) {
        best = dists(i, c);
        arg = static_cast<int>(c);
      }
    }
    assignments[static_cast<std::size_t>(i)] = arg;
  }
  return assignments;
}

std::vector<KernelEntry> collect_kernel_entries() {
  rng::Generator gen(97);
  std::vector<KernelEntry> entries;

  // GEMM 256x512x512 — the ISSUE acceptance shape (target >=3x vs seed).
  {
    const auto a = tensor::Tensor::randn(256, 512, gen);
    const auto b = tensor::Tensor::randn(512, 512, gen);
    KernelEntry e;
    e.name = "gemm_256x512x512";
    e.flops = 2.0 * 256 * 512 * 512;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::kernels::matmul_naive(a, b)); },
        3);
    entries.push_back(e);
  }

  // Fused-transpose variants vs transpose-copy + naive GEMM (what the
  // autograd backward passes did before the kernel layer).
  {
    const auto a = tensor::Tensor::randn(256, 512, gen);
    const auto b = tensor::Tensor::randn(256, 512, gen);
    KernelEntry e;
    e.name = "matmul_nt_256x512x256";
    e.flops = 2.0 * 256 * 512 * 256;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul_nt(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              tensor::kernels::matmul_naive(a, tensor::transpose(b)));
        },
        3);
    entries.push_back(e);
  }
  {
    const auto a = tensor::Tensor::randn(512, 256, gen);
    const auto b = tensor::Tensor::randn(512, 256, gen);
    KernelEntry e;
    e.name = "matmul_tn_256x512x256";
    e.flops = 2.0 * 256 * 512 * 256;
    e.seconds = time_best(
        [&] { benchmark::DoNotOptimize(tensor::matmul_tn(a, b)); }, 5);
    e.baseline_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              tensor::kernels::matmul_naive(tensor::transpose(a), b));
        },
        3);
    entries.push_back(e);
  }

  // Pairwise squared distances + KMeans assignment on the ISSUE acceptance
  // shape: 2048 points x 128 dims vs 10 centroids (target >=2x vs seed).
  {
    const auto points = tensor::Tensor::randn(2048, 128, gen);
    const auto centroids = tensor::Tensor::randn(10, 128, gen);
    {
      KernelEntry e;
      e.name = "pairwise_sq_dists_2048x128_k10";
      e.flops = 2.0 * 2048 * 128 * 10;
      e.seconds = time_best(
          [&] {
            benchmark::DoNotOptimize(
                tensor::pairwise_sq_dists(points, centroids));
          },
          7);
      e.baseline_seconds = time_best(
          [&] {
            benchmark::DoNotOptimize(
                tensor::kernels::pairwise_sq_dists_naive(points, centroids));
          },
          5);
      entries.push_back(e);
    }
    {
      KernelEntry e;
      e.name = "kmeans_assign_2048x128_k10";
      e.flops = 2.0 * 2048 * 128 * 10;
      e.seconds = time_best(
          [&] {
            float mean_distance = 0.0f;
            benchmark::DoNotOptimize(
                cluster::assign_to_centroids(points, centroids,
                                             &mean_distance));
          },
          7);
      e.baseline_seconds = time_best(
          [&] { benchmark::DoNotOptimize(assign_naive(points, centroids)); },
          5);
      entries.push_back(e);
    }
  }

  // NT-Xent forward+backward trajectory entry. No scalar baseline exists
  // for the full autograd graph, so the JSON writer omits the baseline and
  // speedup fields for this entry instead of reporting zeros. The flop
  // count covers the three dominating GEMMs (z·zᵀ forward, G·z + Gᵀ·z
  // backward), so gflops understates the true rate slightly.
  {
    rng::Generator g2(98);
    const auto h = tensor::Tensor::randn(256, 64, g2);
    KernelEntry e;
    e.name = "ntxent_fwd_bwd_256x64";
    e.flops = 3.0 * 2.0 * 256.0 * 256.0 * 64.0;
    e.seconds = time_best(
        [&] {
          const ag::VarPtr leaf = ag::parameter(h);
          const ag::VarPtr loss = nn::ntxent(leaf, 0.5f);
          ag::backward(loss);
          benchmark::DoNotOptimize(leaf->grad);
        },
        5);
    entries.push_back(e);
  }

  return entries;
}

// One "{...}" JSON object line for a kernel entry. Entries without a
// baseline (baseline_seconds == 0) drop the baseline/speedup fields rather
// than reporting meaningless zeros.
std::string kernel_entry_json(const KernelEntry& e, bool last) {
  const double gflops =
      e.seconds > 0.0 && e.flops > 0.0 ? e.flops / e.seconds / 1e9 : 0.0;
  char buffer[512];
  if (e.baseline_seconds > 0.0) {
    const double baseline_gflops =
        e.flops > 0.0 ? e.flops / e.baseline_seconds / 1e9 : 0.0;
    const double speedup =
        e.seconds > 0.0 ? e.baseline_seconds / e.seconds : 0.0;
    std::snprintf(buffer, sizeof(buffer),
                  "      {\"name\": \"%s\", \"flops\": %.0f, "
                  "\"seconds\": %.6e, \"gflops\": %.3f, "
                  "\"baseline_seconds\": %.6e, \"baseline_gflops\": %.3f, "
                  "\"speedup\": %.2f}%s\n",
                  e.name.c_str(), e.flops, e.seconds, gflops,
                  e.baseline_seconds, baseline_gflops, speedup,
                  last ? "" : ",");
    std::printf("[kernels] %-32s %8.3f GFLOP/s  (baseline %8.3f, %.2fx)\n",
                e.name.c_str(), gflops, baseline_gflops, speedup);
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "      {\"name\": \"%s\", \"flops\": %.0f, "
                  "\"seconds\": %.6e, \"gflops\": %.3f}%s\n",
                  e.name.c_str(), e.flops, e.seconds, gflops,
                  last ? "" : ",");
    std::printf("[kernels] %-32s %8.3f GFLOP/s  (no baseline)\n",
                e.name.c_str(), gflops);
  }
  return buffer;
}

// Times the kernel suite twice — single-threaded (parallelism forced off)
// and at default parallelism — and writes both runs to one JSON file:
//   {"runs": [{"threads": 1, "entries": [...]},
//             {"threads": N, "entries": [...]}]}
void dump_kernel_json(const char* path) {
  std::ofstream out(path);
  out << "{\n  \"generated_by\": \"bench_micro\",\n  \"runs\": [\n";
  const int default_threads =
      static_cast<int>(common::ThreadPool::default_parallelism());
  const struct {
    int threads;
    std::int64_t override_value;
  } runs[] = {{1, -1}, {default_threads, 0}};
  for (std::size_t r = 0; r < 2; ++r) {
    std::printf("[kernels] --- threads=%d ---\n", runs[r].threads);
    tensor::kernels::set_parallel_threshold_override(runs[r].override_value);
    const std::vector<KernelEntry> entries = collect_kernel_entries();
    out << "    {\"threads\": " << runs[r].threads << ", \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      out << kernel_entry_json(entries[i], i + 1 == entries.size());
    }
    out << "    ]}" << (r + 1 < 2 ? "," : "") << "\n";
  }
  tensor::kernels::set_parallel_threshold_override(0);
  out << "  ]\n}\n";
  std::printf("[kernels] wrote %s\n", path);
}

// --- BENCH_train_step.json ---------------------------------------------------
//
// End-to-end cost of one full PflSsl::local_update (Algorithm 1's client
// step: augment two views, SSL forward, backward, SGD step) per SSL method,
// in three configurations:
//  * "pooled"   — fused graphs + tensor pool (this tree's training step);
//  * "pool_off" — fused graphs, CALIBRE_TENSOR_POOL kill-switch off (every
//                 buffer freshly allocated and zeroed), isolating the pool;
//  * "baseline" — composite graphs (ag::set_fused_graphs(false)) AND pool
//                 off: the step as it ran before the pooled-storage +
//                 fused-op layer existed, which is what the headline
//                 "speedup" compares against.
// steps/sec counts optimizer steps; allocations/step is the pool's miss
// counter (real heap allocations on the calling thread) divided by the
// optimizer steps in one call.

struct TrainStepRun {
  double seconds_per_call = 0.0;
  double steps_per_sec = 0.0;
  double allocs_per_step = 0.0;
};

struct TrainStepEntry {
  std::string method;
  int steps_per_call = 0;
  TrainStepRun pooled;
  TrainStepRun pool_off;
  TrainStepRun baseline;
};

TrainStepEntry time_train_step(ssl::Kind kind) {
  fl::FlConfig config;
  config.local_epochs = 1;
  config.batch_size = 32;
  config.seed = 1234;
  core::PflSsl algo(config, kind);
  const nn::ModelState global = algo.initialize();

  rng::Generator gen(55);
  const tensor::Tensor ssl_pool =
      tensor::Tensor::randn(256, config.encoder.input_dim, gen);
  fl::ClientContext ctx;
  ctx.client_id = 0;
  ctx.round = 0;
  ctx.ssl_pool = &ssl_pool;
  ctx.seed = 77;

  TrainStepEntry entry;
  entry.method = ssl::kind_name(kind);
  entry.steps_per_call =
      static_cast<int>((ssl_pool.rows() + config.batch_size - 1) /
                       config.batch_size) *
      config.local_epochs;

  const auto one_call = [&] {
    benchmark::DoNotOptimize(algo.local_update(global, ctx));
  };
  const auto measure = [&](bool fused, bool pooled) {
    ag::set_fused_graphs(fused);
    tensor::pool::set_enabled(pooled);
    one_call();  // warmup: populates (or drains) the free lists
    tensor::pool::reset_thread_stats();
    one_call();
    const tensor::pool::Stats stats = tensor::pool::thread_stats();
    TrainStepRun run;
    run.allocs_per_step = static_cast<double>(stats.misses) /
                          static_cast<double>(entry.steps_per_call);
    run.seconds_per_call = time_best(one_call, 5);
    run.steps_per_sec =
        static_cast<double>(entry.steps_per_call) / run.seconds_per_call;
    return run;
  };
  entry.baseline = measure(/*fused=*/false, /*pooled=*/false);
  entry.pool_off = measure(/*fused=*/true, /*pooled=*/false);
  entry.pooled = measure(/*fused=*/true, /*pooled=*/true);
  ag::set_fused_graphs(true);
  tensor::pool::set_enabled(true);
  return entry;
}

void dump_train_step_json(const char* path) {
  const ssl::Kind kinds[] = {ssl::Kind::kSimClr, ssl::Kind::kByol,
                             ssl::Kind::kSimSiam};
  std::vector<TrainStepEntry> entries;
  for (const ssl::Kind kind : kinds) entries.push_back(time_train_step(kind));

  std::ofstream out(path);
  out << "{\n  \"generated_by\": \"bench_micro\",\n"
      << "  \"suite\": \"train_step\",\n"
      << "  \"threads\": " << common::ThreadPool::default_parallelism()
      << ",\n  \"local_epochs\": 1,\n  \"batch_size\": 32,\n"
      << "  \"pool_rows\": 256,\n  \"methods\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TrainStepEntry& e = entries[i];
    const double speedup = e.baseline.steps_per_sec > 0.0
                               ? e.pooled.steps_per_sec /
                                     e.baseline.steps_per_sec
                               : 0.0;
    const double pool_only_speedup =
        e.pool_off.steps_per_sec > 0.0
            ? e.pooled.steps_per_sec / e.pool_off.steps_per_sec
            : 0.0;
    // A fully warm pool serves an entire call with zero heap allocations, so
    // floor the denominator at "one allocation per call": the reported
    // reduction is then a lower bound rather than a division by zero.
    const double pooled_floor =
        std::max(e.pooled.allocs_per_step,
                 1.0 / static_cast<double>(e.steps_per_call));
    const double alloc_reduction = e.baseline.allocs_per_step / pooled_floor;
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"method\": \"%s\", \"steps_per_call\": %d,\n"
        "     \"pooled\": {\"seconds_per_call\": %.6e, "
        "\"steps_per_sec\": %.2f, \"allocs_per_step\": %.1f},\n"
        "     \"pool_off\": {\"seconds_per_call\": %.6e, "
        "\"steps_per_sec\": %.2f, \"allocs_per_step\": %.1f},\n"
        "     \"baseline\": {\"seconds_per_call\": %.6e, "
        "\"steps_per_sec\": %.2f, \"allocs_per_step\": %.1f},\n"
        "     \"speedup\": %.2f, \"pool_only_speedup\": %.2f, "
        "\"alloc_reduction_at_least\": %.1f}%s\n",
        e.method.c_str(), e.steps_per_call, e.pooled.seconds_per_call,
        e.pooled.steps_per_sec, e.pooled.allocs_per_step,
        e.pool_off.seconds_per_call, e.pool_off.steps_per_sec,
        e.pool_off.allocs_per_step, e.baseline.seconds_per_call,
        e.baseline.steps_per_sec, e.baseline.allocs_per_step, speedup,
        pool_only_speedup, alloc_reduction,
        i + 1 < entries.size() ? "," : "");
    out << buffer;
    std::printf(
        "[train_step] %-10s %8.1f steps/s pooled vs %8.1f pool-off vs "
        "%8.1f baseline (%.2fx, pool-only %.2fx), %5.1f vs %5.1f "
        "allocs/step (>=%.0fx fewer)\n",
        e.method.c_str(), e.pooled.steps_per_sec, e.pool_off.steps_per_sec,
        e.baseline.steps_per_sec, speedup, pool_only_speedup,
        e.pooled.allocs_per_step, e.baseline.allocs_per_step,
        alloc_reduction);
  }
  out << "  ]\n}\n";
  std::printf("[train_step] wrote %s\n", path);
}

// --- BENCH_comm.json ---------------------------------------------------------
//
// Wire-layer cost of a federated round. Three measurements:
//  * broadcast: serializing the global state once and sharing the snapshot
//    across K requests (this tree's runner) vs serializing per client (the
//    pre-snapshot runner), at K = 8 / 64 / 256, plus the serialization count
//    and logical/physical bytes measured through a real Router;
//  * codecs: encode/decode throughput of f32 / f16 / delta16 / topk16 /
//    int8a on an encoder-sized client update, with the round-trip relative
//    error norm (topk16 at the default 1/16 keep rate);
//  * per-round bytes by codec at a fixed K, against the f32 baseline.

nn::ModelState bench_model_state() {
  rng::Generator gen(9);
  nn::EncoderConfig config;
  nn::MlpEncoder encoder(config, gen);
  return nn::ModelState::from_parameters(encoder.parameters());
}

struct BroadcastEntry {
  int clients = 0;
  double per_client_seconds = 0.0;  // K serializations, K buffers
  double snapshot_seconds = 0.0;    // 1 serialization + K refcounts
  std::uint64_t serializations = 0; // unique buffers through a real Router
  std::uint64_t logical_bytes = 0;
  std::uint64_t physical_bytes = 0;
};

BroadcastEntry time_broadcast(const nn::ModelState& state, int clients) {
  BroadcastEntry entry;
  entry.clients = clients;
  std::size_t sink = 0;
  entry.per_client_seconds = time_best(
      [&] {
        for (int k = 0; k < clients; ++k) {
          const comm::Payload payload(state.to_bytes());
          sink += payload.size();
        }
      },
      5);
  entry.snapshot_seconds = time_best(
      [&] {
        const comm::Payload snapshot(state.to_bytes());
        for (int k = 0; k < clients; ++k) {
          const comm::Payload shared = snapshot;
          sink += shared.size();
        }
      },
      5);
  benchmark::DoNotOptimize(sink);

  // Serialization count and dedup savings measured through a real broadcast:
  // counters advance on the sending thread, so stats are final after the
  // send loop even while handlers drain on the pool.
  comm::Router router(2);
  for (int c = 0; c < clients; ++c) {
    router.register_endpoint(c, [](const comm::Message& request) {
      benchmark::DoNotOptimize(request.payload.bytes().data());
    });
  }
  const comm::Payload snapshot(state.to_bytes());
  for (int c = 0; c < clients; ++c) {
    comm::Message request;
    request.type = comm::MessageType::kTrainRequest;
    request.sender = comm::kServerEndpoint;
    request.receiver = c;
    request.payload = snapshot;
    router.send(std::move(request));
  }
  const comm::TrafficStats stats = router.stats();
  entry.serializations = stats.broadcast_serializations;
  entry.logical_bytes = stats.logical_bytes;
  entry.physical_bytes = stats.physical_bytes;
  return entry;
}

struct CodecEntry {
  std::string name;
  std::uint64_t broadcast_bytes = 0;  // encoded global state
  std::uint64_t update_bytes = 0;     // encoded client update
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  double rel_error = 0.0;             // ||decode(encode(u)) - u|| / ||u||
  std::uint64_t round_bytes = 0;      // K * (broadcast + update + headers)
};

void dump_comm_json(const char* path) {
  const nn::ModelState state = bench_model_state();
  const double state_mb =
      static_cast<double>(state.size()) * sizeof(float) / 1e6;

  std::vector<BroadcastEntry> broadcasts;
  for (const int clients : {8, 64, 256}) {
    broadcasts.push_back(time_broadcast(state, clients));
  }

  // A realistic client update: the global state plus a small local drift —
  // the regime delta16 is built for.
  rng::Generator gen(31);
  const tensor::Tensor drift =
      tensor::Tensor::randn(1, static_cast<std::int64_t>(state.size()), gen);
  fl::ClientUpdate update;
  {
    std::vector<float> values = state.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] += 0.01f * drift(0, static_cast<std::int64_t>(i));
    }
    update.state = nn::ModelState(std::move(values));
  }
  update.weight = 32.0f;
  update.scalars["divergence"] = 0.25f;

  constexpr int kRoundClients = 10;
  std::vector<CodecEntry> codecs;
  for (const comm::Codec codec :
       {comm::Codec::kF32, comm::Codec::kF16, comm::Codec::kDelta16,
        comm::Codec::kTopK16, comm::Codec::kInt8A}) {
    CodecEntry entry;
    entry.name = comm::codec_name(codec);
    // Broadcast under the delta-referenced codecs has no prior reference,
    // so it degrades to f16 — exactly what the runner ships. The update's
    // delta base is that broadcast as both sides decode it.
    const std::vector<std::uint8_t> broadcast_bytes = state.to_bytes(codec);
    const nn::ModelState base = nn::ModelState::from_bytes(broadcast_bytes);
    const nn::ModelState* update_base =
        codec == comm::Codec::kF32 ? nullptr : &base;
    entry.broadcast_bytes = broadcast_bytes.size();
    const std::size_t topk =
        codec == comm::Codec::kTopK16
            ? std::max<std::size_t>(1, state.size() / 16)
            : 0;
    std::vector<std::uint8_t> update_bytes =
        fl::serialize_update(update, codec, update_base, topk);
    entry.update_bytes = update_bytes.size();
    entry.encode_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              fl::serialize_update(update, codec, update_base, topk));
        },
        5);
    entry.decode_seconds = time_best(
        [&] {
          benchmark::DoNotOptimize(
              fl::deserialize_update(update_bytes, update_base));
        },
        5);
    const fl::ClientUpdate decoded =
        fl::deserialize_update(update_bytes, update_base);
    double err = 0.0, ref = 0.0;
    for (std::size_t i = 0; i < update.state.size(); ++i) {
      const double d = static_cast<double>(decoded.state.values()[i]) -
                       update.state.values()[i];
      err += d * d;
      ref += static_cast<double>(update.state.values()[i]) *
             update.state.values()[i];
    }
    entry.rel_error = ref > 0.0 ? std::sqrt(err) / std::sqrt(ref) : 0.0;
    entry.round_bytes =
        static_cast<std::uint64_t>(kRoundClients) *
        (entry.broadcast_bytes + entry.update_bytes +
         2 * comm::Message::kHeaderBytes);
    codecs.push_back(entry);
  }

  std::ofstream out(path);
  out << "{\n  \"generated_by\": \"bench_micro\",\n"
      << "  \"suite\": \"comm\",\n"
      << "  \"model_params\": " << state.size() << ",\n"
      << "  \"round_clients\": " << kRoundClients << ",\n"
      << "  \"broadcast\": [\n";
  for (std::size_t i = 0; i < broadcasts.size(); ++i) {
    const BroadcastEntry& e = broadcasts[i];
    const double speedup = e.snapshot_seconds > 0.0
                               ? e.per_client_seconds / e.snapshot_seconds
                               : 0.0;
    const double saved =
        e.logical_bytes > 0
            ? 100.0 * static_cast<double>(e.logical_bytes - e.physical_bytes) /
                  static_cast<double>(e.logical_bytes)
            : 0.0;
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"clients\": %d, \"per_client_seconds\": %.6e, "
                  "\"snapshot_seconds\": %.6e, \"speedup\": %.2f, "
                  "\"serializations\": %llu, \"logical_bytes\": %llu, "
                  "\"physical_bytes\": %llu, \"dedup_saved_pct\": %.1f}%s\n",
                  e.clients, e.per_client_seconds, e.snapshot_seconds, speedup,
                  static_cast<unsigned long long>(e.serializations),
                  static_cast<unsigned long long>(e.logical_bytes),
                  static_cast<unsigned long long>(e.physical_bytes), saved,
                  i + 1 < broadcasts.size() ? "," : "");
    out << buffer;
    std::printf(
        "[comm] broadcast K=%-3d  %.3f ms per-client vs %.3f ms snapshot "
        "(%.1fx, %llu serialization%s, %.1f%% bytes deduplicated)\n",
        e.clients, e.per_client_seconds * 1e3, e.snapshot_seconds * 1e3,
        speedup, static_cast<unsigned long long>(e.serializations),
        e.serializations == 1 ? "" : "s", saved);
  }
  out << "  ],\n  \"codecs\": [\n";
  const std::uint64_t f32_round_bytes = codecs.front().round_bytes;
  for (std::size_t i = 0; i < codecs.size(); ++i) {
    const CodecEntry& e = codecs[i];
    const double reduction =
        f32_round_bytes > 0
            ? 100.0 *
                  static_cast<double>(f32_round_bytes - e.round_bytes) /
                  static_cast<double>(f32_round_bytes)
            : 0.0;
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s\", \"broadcast_bytes\": %llu, "
        "\"update_bytes\": %llu, \"encode_seconds\": %.6e, "
        "\"decode_seconds\": %.6e, \"encode_mb_per_s\": %.1f, "
        "\"decode_mb_per_s\": %.1f, \"round_trip_rel_error\": %.3e, "
        "\"round_bytes\": %llu, \"reduction_vs_f32_pct\": %.1f}%s\n",
        e.name.c_str(), static_cast<unsigned long long>(e.broadcast_bytes),
        static_cast<unsigned long long>(e.update_bytes), e.encode_seconds,
        e.decode_seconds,
        e.encode_seconds > 0.0 ? state_mb / e.encode_seconds : 0.0,
        e.decode_seconds > 0.0 ? state_mb / e.decode_seconds : 0.0,
        e.rel_error, static_cast<unsigned long long>(e.round_bytes),
        reduction, i + 1 < codecs.size() ? "," : "");
    out << buffer;
    std::printf(
        "[comm] codec %-8s %7.1f KB/round-trip, encode %6.1f MB/s, "
        "decode %6.1f MB/s, rel err %.2e, round bytes %.1f KB "
        "(%.1f%% vs f32)\n",
        e.name.c_str(),
        static_cast<double>(e.broadcast_bytes + e.update_bytes) / 1e3,
        e.encode_seconds > 0.0 ? state_mb / e.encode_seconds : 0.0,
        e.decode_seconds > 0.0 ? state_mb / e.decode_seconds : 0.0,
        e.rel_error, static_cast<double>(e.round_bytes) / 1e3, reduction);
  }
  out << "  ]\n}\n";
  std::printf("[comm] wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  // --suite {kernels|train_step|comm|all} selects which JSON dump(s) run
  // after the google-benchmark suite. Parsed (and stripped) before
  // benchmark::Initialize so the library never sees the flag.
  std::string suite = "all";
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--suite=", 0) == 0) {
      suite = arg.substr(8);
    } else if (arg == "--suite" && i + 1 < argc) {
      suite = argv[++i];
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;
  if (suite != "all" && suite != "kernels" && suite != "train_step" &&
      suite != "comm") {
    std::fprintf(
        stderr,
        "unknown --suite '%s' (expected kernels|train_step|comm|all)\n",
        suite.c_str());
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (suite == "all" || suite == "kernels") {
    dump_kernel_json("BENCH_kernels.json");
  }
  if (suite == "all" || suite == "train_step") {
    dump_train_step_json("BENCH_train_step.json");
  }
  if (suite == "all" || suite == "comm") {
    dump_comm_json("BENCH_comm.json");
  }
  return 0;
}
