// Figs. 1 & 2 — the motivating observation: representations learned by
// plain pFL-SimCLR / pFL-BYOL have *fuzzy class boundaries*, both pooled
// across clients (Fig. 1) and within individual clients (Fig. 2).
//
// The paper shows this with 2-D t-SNE scatter plots. Here the same encoders
// are trained, the same embeddings are computed and exported as CSV
// (tsne_*.csv, plottable with any tool), and the figure's visual message is
// quantified: silhouette score / KMeans purity / NMI of the representations
// against true labels — low values = fuzzy boundaries. A random-init encoder
// row calibrates what "no structure" looks like, and Calibre (SimCLR) shows
// the calibrated contrast (paper Fig. 6).
//
// Fig. 2's per-client panel: per-client silhouette next to that client's
// personalized-model accuracy.
#include <iostream>

#include "bench/harness.h"
#include "cluster/quality.h"
#include "core/pfl_ssl.h"

using namespace calibre;

int main() {
  const bench::Scale scale = bench::resolve_scale();
  const bench::Setting setting{"cifar10", "dirichlet", 2, 0.3};
  const bench::Workbench workbench = bench::build_workbench(setting, scale);
  const bench::PooledSamples pooled =
      bench::pool_client_samples(workbench.fed, /*num_clients=*/10,
                                 /*per_client=*/40);

  std::cout << "Figs. 1 & 2 reproduction — representations of 10/"
            << scale.train_clients << " clients, " << setting.label() << "\n";

  std::vector<metrics::RepresentationQuality> quality_rows;
  struct PerClient {
    std::string method;
    std::vector<double> silhouettes;
    std::vector<double> accuracies;
  };
  std::vector<PerClient> per_client_rows;

  for (const std::string& method :
       {std::string("pFL-SimCLR"), std::string("pFL-BYOL"),
        std::string("Calibre (SimCLR)")}) {
    core::PflSsl* pfl = nullptr;
    fl::FlConfig config = workbench.config;
    const auto algorithm = algos::make_algorithm(method, config);
    pfl = dynamic_cast<core::PflSsl*>(algorithm.get());
    const fl::RunResult result = bench::run_algorithm(*algorithm, workbench);

    // Fig. 1: pooled cross-client representation quality + t-SNE export.
    const tensor::Tensor features =
        pfl->extract_features(result.final_state, pooled.x);
    quality_rows.push_back(bench::measure_representation(
        method, features, pooled.labels, pooled.client_ids, "."));

    // Fig. 2: per-client boundary quality vs that client's accuracy.
    PerClient row;
    row.method = method;
    for (int c = 0; c < 3 && c < workbench.fed.num_train_clients(); ++c) {
      const data::Dataset& shard = workbench.fed.test[static_cast<std::size_t>(c)];
      const tensor::Tensor client_features =
          pfl->extract_features(result.final_state, shard.x);
      row.silhouettes.push_back(
          cluster::silhouette_score(client_features, shard.labels));
      row.accuracies.push_back(
          result.train_accuracies[static_cast<std::size_t>(c)]);
    }
    per_client_rows.push_back(row);
    std::cout << "  " << method << " done\n";
  }

  // Random-encoder reference: what "no training" looks like.
  {
    core::PflSsl random_encoder(workbench.config, ssl::Kind::kSimClr);
    const nn::ModelState init = random_encoder.initialize();
    const tensor::Tensor features =
        random_encoder.extract_features(init, pooled.x);
    quality_rows.push_back(bench::measure_representation(
        "random encoder", features, pooled.labels, pooled.client_ids, ""));
  }

  metrics::print_quality_table(
      std::cout,
      "Fig. 1 — cross-client representation quality (higher = clearer "
      "class boundaries)",
      quality_rows);

  std::cout << "\n== Fig. 2 — per-client boundary quality vs personalized "
               "accuracy ==\n";
  for (const auto& row : per_client_rows) {
    std::cout << "  " << row.method << ":";
    for (std::size_t c = 0; c < row.silhouettes.size(); ++c) {
      std::printf(" client%zu silhouette %.3f acc %.1f%% |", c,
                  row.silhouettes[c], row.accuracies[c] * 100.0);
    }
    std::cout << "\n";
  }
  std::cout << "t-SNE embeddings exported to ./tsne_*.csv\n";
  return 0;
}
