// Table I — ablation of the prototype regularizers L_n and L_p on the
// quantity-based non-IID CIFAR-10-like setting (paper: (2,500); here
// (2, CALIBRE_SAMPLES)). For Calibre built on SimCLR, SwAV and SMoG, the
// four {L_n, L_p} combinations are run and reported as accuracy mean ± std,
// next to the paper's reference numbers.
//
// Expected shapes (paper §V-F):
//  * SimCLR: both regularizers help; L_n matters more than L_p; the full
//    objective is best (paper: 54.67 -> 89.16).
//  * SwAV / SMoG: their objectives already build prototypes, so adding L_n
//    *hurts* while L_p alone helps slightly.
//
// Extension rows (design-choice ablations from DESIGN.md §6): divergence
// aggregation off / proportional, alpha sweep, prototype-count sweep, and
// the two L_n formulations.
#include <iostream>

#include "bench/harness.h"
#include "common/env.h"

using namespace calibre;

namespace {

struct PaperRef {
  double mean;
  double std;
};

// Paper Table I values, indexed [ssl][row] with rows: none, Lp, Ln, both.
constexpr PaperRef kPaperTable1[3][4] = {
    {{54.67, 14.32}, {73.58, 10.13}, {81.07, 12.92}, {89.16, 10.58}},  // SimCLR
    {{85.03, 15.10}, {84.76, 12.50}, {79.31, 15.73}, {81.42, 11.93}},  // SwAV
    {{86.19, 11.32}, {87.23, 10.90}, {77.31, 13.24}, {80.07, 11.20}},  // SMoG
};

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale();
  const bench::Setting setting{"cifar10", "quantity", 2, 0.3};
  const bench::Workbench workbench = bench::build_workbench(setting, scale);

  std::cout << "Table I reproduction — " << setting.label() << ", "
            << scale.train_clients << " clients, " << scale.rounds
            << " rounds\n";

  const ssl::Kind kinds[3] = {ssl::Kind::kSimClr, ssl::Kind::kSwav,
                              ssl::Kind::kSmog};
  const bool combos[4][2] = {
      {false, false}, {false, true}, {true, false}, {true, true}};

  std::vector<metrics::ResultRow> rows;
  for (int k = 0; k < 3; ++k) {
    for (int combo = 0; combo < 4; ++combo) {
      core::CalibreConfig calibre_config;
      calibre_config.prototype.use_ln = combos[combo][0];
      calibre_config.prototype.use_lp = combos[combo][1];
      const auto algorithm =
          algos::make_calibre(kinds[k], workbench.config, calibre_config);
      const fl::RunResult result = bench::run_algorithm(*algorithm, workbench);
      rows.push_back(bench::to_row(result, kPaperTable1[k][combo].mean,
                                   kPaperTable1[k][combo].std));
      std::cout << "  " << result.algorithm << " done\n";
    }
  }
  metrics::print_result_table(
      std::cout, "Table I — L_n / L_p ablation ((2," +
                     std::to_string(scale.samples_per_client) + ") CIFAR-10)",
      rows);

  if (env::get_flag("CALIBRE_SKIP_EXTENSIONS")) return 0;

  // --- design-choice ablations (not in the paper's table) -------------------
  std::vector<metrics::ResultRow> extension;
  {
    core::CalibreConfig base;  // full Calibre (SimCLR)
    struct Variant {
      std::string note;
      core::CalibreConfig config;
    };
    std::vector<Variant> variants;
    {
      Variant v{"aggregation: plain FedAvg", base};
      v.config.divergence_weighted_aggregation = false;
      variants.push_back(v);
    }
    {
      Variant v{"aggregation: proportional-divergence", base};
      v.config.divergence_mode = core::DivergenceMode::kProportional;
      variants.push_back(v);
    }
    for (const float alpha : {0.1f, 0.6f}) {
      Variant v{"alpha = " + std::to_string(alpha).substr(0, 3), base};
      v.config.alpha = alpha;
      variants.push_back(v);
    }
    for (const int k : {4, 16}) {
      Variant v{"K = " + std::to_string(k) + " prototypes", base};
      v.config.prototype.num_prototypes = k;
      variants.push_back(v);
    }
    {
      Variant v{"L_n form: Alg.1 line 17 verbatim", base};
      v.config.prototype.ln_form = core::LnForm::kPaper;
      variants.push_back(v);
    }
    {
      Variant v{"prototypes: local-dataset scope", base};
      v.config.prototype.scope = core::PrototypeScope::kLocalDataset;
      variants.push_back(v);
    }
    for (const Variant& variant : variants) {
      const auto algorithm = algos::make_calibre(
          ssl::Kind::kSimClr, workbench.config, variant.config);
      const fl::RunResult result = bench::run_algorithm(*algorithm, workbench);
      metrics::ResultRow row = bench::to_row(result);
      row.note = variant.note;
      extension.push_back(row);
      std::cout << "  ablation: " << variant.note << " done\n";
    }
  }
  metrics::print_result_table(std::cout,
                              "Table I extension — Calibre (SimCLR) design "
                              "ablations",
                              extension);
  return 0;
}
