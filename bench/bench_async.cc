// bench_async — convergence vs wall-clock for buffered asynchronous
// aggregation against the synchronous barrier loop, under one shared
// availability trace.
//
// Both modes run the same method on the same federated dataset with the
// same seeded device classes (a fast class, a flaky+slow class, and a
// diurnal class that sleeps half its period). Total fold budget is matched:
// sync runs R rounds of C clients; async commits R buffers of C folds with
// C requests in flight. Sync pays the straggler tax at every barrier — each
// round lasts as long as its slowest sampled device — while async keeps
// folding whatever arrives, so the same number of aggregated updates lands
// in less wall-clock time at a small staleness cost.
//
//   bench_async                 # paper-ish scale -> BENCH_async.json
//   bench_async --smoke         # CI-sized, a few seconds
//   bench_async --rounds 20 --clients-per-round 8 --out async.json
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "harness.h"

namespace calibre::bench {
namespace {

struct AsyncOptions {
  int rounds = 20;             // sync rounds == async commits
  int clients_per_round = 8;   // sync cohort == async in-flight == buffer
  int train_clients = 20;
  int samples_per_client = 100;
  int local_epochs = 1;
  int latency_scale_ms = 60;   // base injected latency for the slow class
  std::string method = "FedAvg";
  std::string out = "BENCH_async.json";
};

struct ModeResult {
  std::string mode;
  double wall_seconds = 0.0;
  int folds = 0;
  int failures = 0;
  int retries = 0;
  int late_dropped = 0;
  double mean_accuracy = 0.0;
  float last_update_norm = 0.0f;
  float staleness_mean = 0.0f;  // async only
  int staleness_max = 0;        // async only
  std::uint64_t bytes_total = 0;
};

fl::FlConfig mode_config(const AsyncOptions& options, const Workbench& bench,
                         bool async_mode) {
  fl::FlConfig config = bench.config;
  config.rounds = options.rounds;
  config.clients_per_round = options.clients_per_round;
  config.local_epochs = options.local_epochs;
  config.personalize_cap = 8;
  // Shared availability trace: identical classes, latencies, and fault seed
  // in both modes, so the comparison isolates the aggregation discipline.
  config.device_classes = {
      {"fast", 0.0f, 0, 1.0f, 0},
      {"slow", 0.05f, options.latency_scale_ms, 1.0f, 0},
      {"night", 0.0f, options.latency_scale_ms / 3, 0.5f, 8},
  };
  config.max_client_retries = 1;
  config.async_mode = async_mode;
  if (async_mode) {
    config.async_buffer_size = options.clients_per_round;
    config.staleness_alpha = 0.5f;
  }
  return config;
}

ModeResult run_mode(const AsyncOptions& options, const Workbench& bench,
                    bool async_mode) {
  const fl::FlConfig config = mode_config(options, bench, async_mode);
  const auto algorithm = algos::make_algorithm(options.method, config);
  const fl::RunResult result =
      fl::run_federated(*algorithm, bench.fed, false);

  ModeResult mode;
  mode.mode = async_mode ? "async" : "sync";
  mode.wall_seconds = result.wall_seconds;
  for (const fl::RoundStats& entry : result.history) {
    mode.folds += entry.participants;
    mode.failures += entry.failures;
    mode.retries += entry.retries;
    mode.late_dropped += entry.late_dropped;
    mode.bytes_total += entry.bytes_broadcast + entry.bytes_collected;
  }
  if (!result.history.empty()) {
    mode.last_update_norm = result.history.back().mean_update_norm;
    mode.staleness_mean = result.history.back().staleness_mean;
    mode.staleness_max = result.history.back().staleness_max;
  }
  if (!result.train_accuracies.empty()) {
    mode.mean_accuracy = std::accumulate(result.train_accuracies.begin(),
                                         result.train_accuracies.end(), 0.0) /
                         static_cast<double>(result.train_accuracies.size());
  }
  return mode;
}

int run(const AsyncOptions& options) {
  Setting setting;
  setting.dataset = "cifar10";
  setting.partition = "dirichlet";
  Scale scale;
  scale.train_clients = options.train_clients;
  scale.novel_clients = 2;
  scale.rounds = options.rounds;
  scale.clients_per_round = options.clients_per_round;
  scale.samples_per_client = options.samples_per_client;
  scale.test_samples_per_client = options.samples_per_client / 2;
  scale.local_epochs = options.local_epochs;
  const Workbench bench = build_workbench(setting, scale);

  const ModeResult sync_run = run_mode(options, bench, false);
  const ModeResult async_run = run_mode(options, bench, true);

  for (const ModeResult* mode : {&sync_run, &async_run}) {
    std::printf(
        "[async] %-5s  %6.2fs wall  %4d folds  acc %.3f  "
        "fail %d  retry %d  late %d  stale %.2f/%d  %.1f KB\n",
        mode->mode.c_str(), mode->wall_seconds, mode->folds,
        mode->mean_accuracy, mode->failures, mode->retries,
        mode->late_dropped, mode->staleness_mean, mode->staleness_max,
        static_cast<double>(mode->bytes_total) / 1024.0);
  }
  if (sync_run.wall_seconds > 0.0) {
    std::printf("[async] speedup %.2fx at matched fold budget (%d updates)\n",
                sync_run.wall_seconds /
                    (async_run.wall_seconds > 0.0 ? async_run.wall_seconds
                                                  : 1.0),
                sync_run.folds);
  }

  // The fold budgets must actually match, or the wall-clock comparison is
  // meaningless: async folds exactly rounds * buffer_size by construction.
  if (async_run.folds != options.rounds * options.clients_per_round) {
    std::fprintf(stderr, "[async] expected %d async folds, got %d\n",
                 options.rounds * options.clients_per_round, async_run.folds);
    return 2;
  }

  std::ofstream out(options.out);
  out << "{\n  \"generated_by\": \"bench_async\",\n"
      << "  \"method\": \"" << options.method << "\",\n"
      << "  \"rounds\": " << options.rounds << ",\n"
      << "  \"clients_per_round\": " << options.clients_per_round << ",\n"
      << "  \"train_clients\": " << options.train_clients << ",\n"
      << "  \"latency_scale_ms\": " << options.latency_scale_ms << ",\n"
      << "  \"modes\": [\n";
  const std::vector<const ModeResult*> modes = {&sync_run, &async_run};
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& mode = *modes[i];
    char buffer[384];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"mode\": \"%s\", \"wall_seconds\": %.3f, \"folds\": %d, "
        "\"mean_accuracy\": %.4f, \"failures\": %d, \"retries\": %d, "
        "\"late_dropped\": %d, \"staleness_mean\": %.3f, "
        "\"staleness_max\": %d, \"bytes_total\": %llu}%s\n",
        mode.mode.c_str(), mode.wall_seconds, mode.folds, mode.mean_accuracy,
        mode.failures, mode.retries, mode.late_dropped, mode.staleness_mean,
        mode.staleness_max,
        static_cast<unsigned long long>(mode.bytes_total),
        i + 1 < modes.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
  std::printf("[async] wrote %s\n", options.out.c_str());
  return 0;
}

}  // namespace
}  // namespace calibre::bench

int main(int argc, char** argv) {
  using calibre::bench::AsyncOptions;
  AsyncOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--smoke") {
      // CI-sized: still exercises both loops, the shared availability
      // trace, and the fold-budget invariant, in a few seconds.
      options.rounds = 4;
      options.clients_per_round = 4;
      options.train_clients = 8;
      options.samples_per_client = 30;
      options.latency_scale_ms = 30;
    } else if (arg == "--rounds" && has_value) {
      options.rounds = std::atoi(argv[++i]);
    } else if (arg == "--clients-per-round" && has_value) {
      options.clients_per_round = std::atoi(argv[++i]);
    } else if (arg == "--train-clients" && has_value) {
      options.train_clients = std::atoi(argv[++i]);
    } else if (arg == "--samples" && has_value) {
      options.samples_per_client = std::atoi(argv[++i]);
    } else if (arg == "--local-epochs" && has_value) {
      options.local_epochs = std::atoi(argv[++i]);
    } else if (arg == "--latency-ms" && has_value) {
      options.latency_scale_ms = std::atoi(argv[++i]);
    } else if (arg == "--method" && has_value) {
      options.method = argv[++i];
    } else if (arg == "--out" && has_value) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (options.rounds <= 0 || options.clients_per_round <= 0) {
    std::fprintf(stderr, "need positive rounds and clients-per-round\n");
    return 1;
  }
  return calibre::bench::run(options);
}
