// bench_scale — server-side scalability of the streaming runner.
//
// For each population size K the bench forks a child process that builds a
// *virtual* federated dataset over K clients, runs a few federated rounds
// through fl::run_federated, and reports wall time plus its peak RSS
// (getrusage ru_maxrss). Fork-per-population matters: ru_maxrss is a
// process-lifetime high-water mark, so measuring 1k / 10k / 100k in one
// process would let the largest run mask the others.
//
// The point of the measurement: with streaming aggregation + virtual
// clients, server memory is O(model + dataset), not O(population), so peak
// RSS should stay essentially flat from 1k to 100k clients while rounds/s
// degrades only with the sampled cohort, not with K.
//
//   bench_scale                         # 1k / 10k / 100k -> BENCH_scale.json
//   bench_scale --smoke                 # tiny populations for CI
//   bench_scale --populations 500,5000  # custom sweep
//   bench_scale --rounds 5 --clients-per-round 64 --out scale.json
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fed_data.h"
#include "fl/runner.h"

namespace calibre::bench {
namespace {

struct ScaleOptions {
  std::vector<int> populations = {1000, 10000, 100000};
  int rounds = 3;
  int clients_per_round = 32;
  int samples_per_client = 100;
  int local_epochs = 1;
  int personalize_cap = 8;
  std::string method = "FedAvg";
  std::string out = "BENCH_scale.json";
};

// What a child process reports back through its pipe (POD: it crosses the
// fork boundary as raw bytes).
struct ScaleResult {
  int clients = 0;
  double train_seconds = 0.0;  // rounds only (personalization excluded)
  double total_seconds = 0.0;  // build + rounds + capped personalization
  // Server-side phase split from RunResult::phases: where the training
  // stage's server thread time actually goes (broadcast serialize + send /
  // reply decode / aggregator fold / merge + finish).
  double dispatch_seconds = 0.0;
  double decode_seconds = 0.0;
  double fold_seconds = 0.0;
  double commit_seconds = 0.0;
  long peak_rss_kb = 0;
};

ScaleResult run_population(const ScaleOptions& options, int clients) {
  const auto wall_start = std::chrono::steady_clock::now();
  const data::SyntheticDataset synth =
      data::make_synthetic(data::preset_by_name("cifar10"));

  data::PartitionConfig partition_config;
  partition_config.num_clients = clients;
  partition_config.samples_per_client = options.samples_per_client;
  partition_config.test_samples_per_client = options.samples_per_client / 2;
  rng::Generator partition_gen(42 ^ 0xFACE);
  const data::Partition partition =
      data::partition_iid(synth.train, synth.test, partition_config,
                          partition_gen);
  rng::Generator fed_gen(42 ^ 0xFEED);
  const fl::FedDataset fed =
      fl::build_virtual_fed_dataset(synth, partition, clients, fed_gen);

  fl::FlConfig config;
  config.encoder.input_dim = synth.train.input_dim();
  config.num_classes = synth.train.num_classes;
  config.rounds = options.rounds;
  config.clients_per_round = options.clients_per_round;
  config.local_epochs = options.local_epochs;
  config.personalize_cap = options.personalize_cap;
  config.seed = 42;
  config.num_train_clients = clients;
  const auto algorithm = algos::make_algorithm(options.method, config);

  const auto train_start = std::chrono::steady_clock::now();
  const fl::RunResult result = fl::run_federated(*algorithm, fed, false);
  const auto train_end = std::chrono::steady_clock::now();

  ScaleResult out;
  out.clients = clients;
  out.train_seconds =
      std::chrono::duration<double>(train_end - train_start).count();
  // run_federated's tail is the capped personalization sweep; fold it into
  // total_seconds so the report stays honest about end-to-end cost.
  out.total_seconds =
      std::chrono::duration<double>(train_end - wall_start).count();
  out.dispatch_seconds = result.phases.dispatch_seconds;
  out.decode_seconds = result.phases.decode_seconds;
  out.fold_seconds = result.phases.fold_seconds;
  out.commit_seconds = result.phases.commit_seconds;
  // Keep the run's outputs alive until after the clock stops.
  if (result.history.size() != static_cast<std::size_t>(options.rounds)) {
    std::fprintf(stderr, "expected %d rounds, ran %zu\n", options.rounds,
                 result.history.size());
    std::exit(3);
  }
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  out.peak_rss_kb = usage.ru_maxrss;  // KiB on Linux
  return out;
}

// Forks, runs one population in the child, and reads the result struct back
// over a pipe. Returns false (and leaves *result untouched) if the child
// failed.
bool run_forked(const ScaleOptions& options, int clients,
                ScaleResult* result) {
  int fds[2] = {-1, -1};
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    const ScaleResult child = run_population(options, clients);
    const ssize_t wrote = write(fds[1], &child, sizeof(child));
    close(fds[1]);
    _exit(wrote == static_cast<ssize_t>(sizeof(child)) ? 0 : 4);
  }
  close(fds[1]);
  ScaleResult read_back;
  std::size_t got = 0;
  while (got < sizeof(read_back)) {
    const ssize_t n = read(fds[0], reinterpret_cast<char*>(&read_back) + got,
                           sizeof(read_back) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  const bool ok = got == sizeof(read_back) && WIFEXITED(status) &&
                  WEXITSTATUS(status) == 0;
  if (ok) *result = read_back;
  return ok;
}

int run(const ScaleOptions& options) {
  std::vector<ScaleResult> results;
  for (const int clients : options.populations) {
    ScaleResult result;
    if (!run_forked(options, clients, &result)) {
      std::fprintf(stderr, "[scale] population %d failed\n", clients);
      return 1;
    }
    const double rounds_per_s =
        result.train_seconds > 0.0 ? options.rounds / result.train_seconds
                                   : 0.0;
    std::printf(
        "[scale] K=%-7d  %.2f rounds/s  (train %.2fs, total %.2fs)  "
        "peak RSS %.1f MB\n",
        result.clients, rounds_per_s, result.train_seconds,
        result.total_seconds,
        static_cast<double>(result.peak_rss_kb) / 1024.0);
    std::printf(
        "[scale]            phases: dispatch %.3fs  decode %.3fs  "
        "fold %.3fs  commit %.3fs\n",
        result.dispatch_seconds, result.decode_seconds, result.fold_seconds,
        result.commit_seconds);
    results.push_back(result);
  }

  // Memory must not scale with the population: allow dataset-size growth
  // plus slack, but a superlinear blow-up (the pre-streaming runner held
  // O(population) shards and O(cohort) decoded updates) fails the bench.
  if (results.size() >= 2) {
    const double first = static_cast<double>(results.front().peak_rss_kb);
    const double last = static_cast<double>(results.back().peak_rss_kb);
    const double pop_ratio = static_cast<double>(
                                 options.populations.back()) /
                             static_cast<double>(options.populations.front());
    if (last > first * 8.0 && last > 256.0 * 1024.0) {
      std::fprintf(stderr,
                   "[scale] peak RSS grew %.1fx across a %.0fx population "
                   "sweep — server memory is no longer bounded\n",
                   last / first, pop_ratio);
      return 2;
    }
  }

  std::ofstream out(options.out);
  out << "{\n  \"generated_by\": \"bench_scale\",\n"
      << "  \"method\": \"" << options.method << "\",\n"
      << "  \"rounds\": " << options.rounds << ",\n"
      << "  \"clients_per_round\": " << options.clients_per_round << ",\n"
      << "  \"samples_per_client\": " << options.samples_per_client << ",\n"
      << "  \"local_epochs\": " << options.local_epochs << ",\n"
      << "  \"personalize_cap\": " << options.personalize_cap << ",\n"
      << "  \"populations\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"clients\": %d, \"rounds_per_s\": %.3f, "
                  "\"train_seconds\": %.3f, \"total_seconds\": %.3f, "
                  "\"dispatch_seconds\": %.3f, \"decode_seconds\": %.3f, "
                  "\"fold_seconds\": %.3f, \"commit_seconds\": %.3f, "
                  "\"peak_rss_mb\": %.1f}%s\n",
                  r.clients,
                  r.train_seconds > 0.0 ? options.rounds / r.train_seconds
                                        : 0.0,
                  r.train_seconds, r.total_seconds, r.dispatch_seconds,
                  r.decode_seconds, r.fold_seconds, r.commit_seconds,
                  static_cast<double>(r.peak_rss_kb) / 1024.0,
                  i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
  std::printf("[scale] wrote %s\n", options.out.c_str());
  return 0;
}

std::vector<int> parse_populations(const std::string& arg) {
  std::vector<int> populations;
  std::size_t begin = 0;
  while (begin < arg.size()) {
    const std::size_t comma = arg.find(',', begin);
    const std::string token =
        arg.substr(begin, comma == std::string::npos ? comma : comma - begin);
    if (!token.empty()) populations.push_back(std::atoi(token.c_str()));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return populations;
}

}  // namespace
}  // namespace calibre::bench

int main(int argc, char** argv) {
  using calibre::bench::ScaleOptions;
  ScaleOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--smoke") {
      // CI-sized sweep: still exercises fork + virtual build + streaming
      // rounds + the RSS guard, in a few seconds.
      options.populations = {200, 1000};
      options.rounds = 2;
      options.clients_per_round = 8;
      options.samples_per_client = 30;
    } else if (arg == "--populations" && has_value) {
      options.populations = calibre::bench::parse_populations(argv[++i]);
    } else if (arg == "--rounds" && has_value) {
      options.rounds = std::atoi(argv[++i]);
    } else if (arg == "--clients-per-round" && has_value) {
      options.clients_per_round = std::atoi(argv[++i]);
    } else if (arg == "--samples" && has_value) {
      options.samples_per_client = std::atoi(argv[++i]);
    } else if (arg == "--local-epochs" && has_value) {
      options.local_epochs = std::atoi(argv[++i]);
    } else if (arg == "--personalize-cap" && has_value) {
      options.personalize_cap = std::atoi(argv[++i]);
    } else if (arg == "--method" && has_value) {
      options.method = argv[++i];
    } else if (arg == "--out" && has_value) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (options.populations.empty() || options.rounds <= 0) {
    std::fprintf(stderr, "need at least one population and one round\n");
    return 1;
  }
  return calibre::bench::run(options);
}
