// bench_codec — the compression frontier: accuracy/fairness vs wire bytes
// across every update codec on one fixed-seed federation.
//
// Runs the same FedAvg workbench once per codec (f32, f16, delta16, topk16,
// int8a, auto) and reports collected wire bytes, the update compression
// ratio, probe accuracy with fairness, and throughput. Three HARD gates
// (exit 2 on violation) anchor the PR's claims:
//
//   1. Bit-identity: the f32 run's final-state hash must equal the constant
//      captured before the codec work landed — the default path never
//      drifts.
//   2. Compression: topk16 (with error feedback) and int8a must shrink the
//      folded updates to <= 25% / <= 26% of their f32 wire bytes. (int8a's
//      floor is 1 byte per coordinate + per-block params ~ 25.8% of f32 —
//      the gate reflects that honestly rather than rounding down.)
//   3. Accuracy: every lossy codec lands within half a probe-accuracy point
//      of the f32 run, and `auto` must never cost more wire bytes than f32.
//      The auto run is additionally re-run at a different thread count and
//      must reproduce the same final hash and per-round codec choices.
//
//   bench_codec               # -> BENCH_codec.json
//   bench_codec --smoke       # identical scale (the gates need the fixed
//                             # workbench); kept for CI-lane symmetry
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "metrics/fairness.h"
#include "metrics/stats.h"

namespace calibre::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

// Final-state hash of the f32 run captured on the pre-codec tree; the
// compression work must never move the default path off these bits.
constexpr std::uint64_t kExpectedF32Hash = 0x89149e2ffb0b8859ULL;
constexpr double kAccuracyTolerance = 0.005;  // half a probe point

std::uint64_t fnv1a(const std::vector<float>& values) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const float v : values) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 32; b += 8) {
      hash ^= (bits >> b) & 0xFFu;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

Workbench codec_workbench() {
  Setting setting;
  setting.dataset = "cifar10";
  setting.partition = "dirichlet";
  Scale scale;
  scale.train_clients = 16;
  scale.novel_clients = 0;
  scale.rounds = 20;
  scale.clients_per_round = 5;
  scale.samples_per_client = 150;
  scale.test_samples_per_client = 100;
  scale.local_epochs = 2;
  scale.seed = 42;
  Workbench bench = build_workbench(setting, scale);
  bench.config.threads = 2;
  return bench;
}

struct CodecRun {
  std::string name;
  std::uint64_t collected = 0;   // logical collected bytes, all rounds
  std::uint64_t wire = 0;        // folded updates, encoded bytes
  std::uint64_t f32_equiv = 0;   // same updates in the f32 layout
  double accuracy = 0.0;
  double variance = 0.0;
  double jain = 0.0;
  std::uint64_t hash = 0;
  double seconds = 0.0;
  // Summed chooser decision record (slot = codec tag); per-round counts for
  // the determinism gate.
  std::array<std::uint64_t, 6> codec_totals{};
  std::vector<std::array<std::uint32_t, 6>> per_round_codecs;
};

CodecRun run_codec(comm::Codec codec, int threads) {
  const Workbench bench = codec_workbench();
  fl::FlConfig config = bench.config;
  config.wire_codec = codec;
  config.threads = threads;
  const auto algorithm = algos::make_algorithm("FedAvg", config);
  const SteadyClock::time_point start = SteadyClock::now();
  const fl::RunResult result = fl::run_federated(*algorithm, bench.fed, false);
  CodecRun run;
  run.name = comm::codec_name(codec);
  run.seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  for (const fl::RoundStats& r : result.history) {
    run.collected += r.bytes_collected;
    run.wire += r.update_bytes_wire;
    run.f32_equiv += r.update_bytes_f32;
    for (std::size_t tag = 0; tag < r.codec_counts.size(); ++tag) {
      run.codec_totals[tag] += r.codec_counts[tag];
    }
    run.per_round_codecs.push_back(r.codec_counts);
  }
  const auto stats = metrics::compute_stats(result.train_accuracies);
  const auto fairness = metrics::compute_fairness(result.train_accuracies);
  run.accuracy = stats.mean;
  run.variance = fairness.variance;
  run.jain = fairness.jain_index;
  run.hash = fnv1a(result.final_state.values());
  return run;
}

int run(const std::string& out_path) {
  const comm::Codec codecs[] = {comm::Codec::kF32,    comm::Codec::kF16,
                                comm::Codec::kDelta16, comm::Codec::kTopK16,
                                comm::Codec::kInt8A,  comm::Codec::kAuto};
  std::vector<CodecRun> runs;
  for (const comm::Codec codec : codecs) {
    runs.push_back(run_codec(codec, /*threads=*/2));
    const CodecRun& run = runs.back();
    std::printf(
        "[codec] %-8s collected %9llu B  update ratio %.3f  acc %.4f  "
        "jain %.4f  %6.2fs  hash %016llx\n",
        run.name.c_str(), static_cast<unsigned long long>(run.collected),
        run.f32_equiv ? static_cast<double>(run.wire) /
                            static_cast<double>(run.f32_equiv)
                      : 1.0,
        run.accuracy, run.jain, run.seconds,
        static_cast<unsigned long long>(run.hash));
  }
  const CodecRun& f32 = runs[0];
  const CodecRun& topk = runs[3];
  const CodecRun& int8 = runs[4];
  const CodecRun& auto_run = runs[5];

  bool ok = true;
  const auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::fprintf(stderr, "[codec] GATE FAILED: %s\n", what);
      ok = false;
    }
  };
  gate(f32.hash == kExpectedF32Hash,
       "f32 final-state hash moved off the pre-codec constant");
  const auto ratio = [&f32](const CodecRun& run) {
    return static_cast<double>(run.wire) / static_cast<double>(f32.wire);
  };
  gate(ratio(topk) <= 0.25, "topk16 update bytes exceed 25% of f32");
  gate(ratio(int8) <= 0.26, "int8a update bytes exceed 26% of f32");
  gate(auto_run.wire <= f32.wire, "auto costs more wire bytes than f32");
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const CodecRun& lossy = runs[i];
    if (std::abs(lossy.accuracy - f32.accuracy) > kAccuracyTolerance) {
      std::fprintf(stderr,
                   "[codec] GATE FAILED: %s accuracy %.4f drifts more than "
                   "%.3f from f32's %.4f\n",
                   lossy.name.c_str(), lossy.accuracy, kAccuracyTolerance,
                   f32.accuracy);
      ok = false;
    }
  }
  // The chooser must be a pure function of the stream: a different thread
  // count may not change the bits or the per-round codec decisions.
  const CodecRun auto_rerun = run_codec(comm::Codec::kAuto, /*threads=*/4);
  gate(auto_rerun.hash == auto_run.hash,
       "auto run hash changed with the thread count");
  gate(auto_rerun.per_round_codecs == auto_run.per_round_codecs,
       "auto per-round codec choices changed with the thread count");

  std::ofstream out(out_path);
  out << "{\n  \"generated_by\": \"bench_codec\",\n"
      << "  \"f32_hash\": \"" << std::hex << f32.hash << std::dec << "\",\n"
      << "  \"gates_passed\": " << (ok ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const CodecRun& run = runs[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"codec\": \"%s\", \"collected_bytes\": %llu, "
        "\"update_wire_bytes\": %llu, \"update_f32_bytes\": %llu, "
        "\"accuracy\": %.6f, \"variance\": %.6f, \"jain\": %.6f, "
        "\"seconds\": %.3f, \"hash\": \"%016llx\", \"chosen\": "
        "{\"f32\": %llu, \"f16\": %llu, \"delta16\": %llu, "
        "\"topk16\": %llu, \"int8a\": %llu}}%s\n",
        run.name.c_str(), static_cast<unsigned long long>(run.collected),
        static_cast<unsigned long long>(run.wire),
        static_cast<unsigned long long>(run.f32_equiv), run.accuracy,
        run.variance, run.jain, run.seconds,
        static_cast<unsigned long long>(run.hash),
        static_cast<unsigned long long>(run.codec_totals[1]),
        static_cast<unsigned long long>(run.codec_totals[2]),
        static_cast<unsigned long long>(run.codec_totals[3]),
        static_cast<unsigned long long>(run.codec_totals[4]),
        static_cast<unsigned long long>(run.codec_totals[5]),
        i + 1 < runs.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
  std::printf("[codec] wrote %s\n", out_path.c_str());

  if (!ok) return 2;
  std::printf("[codec] all gates passed\n");
  return 0;
}

}  // namespace
}  // namespace calibre::bench

int main(int argc, char** argv) {
  std::string out = "BENCH_codec.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      // The gate constants are tied to the fixed workbench, so the smoke
      // run IS the full run (~3 s for all codecs).
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  return calibre::bench::run(out);
}
