// Fig. 3 — Mean and variance of per-client test accuracy under quantity- and
// distribution-based label non-IID on the CIFAR-10-, CIFAR-100- and
// STL-10-like datasets.
//
// The paper reports this as six bar plots over ~16 methods; here each
// (dataset, partition) setting prints one table of accuracy mean ± std plus
// variance. The default method list covers every family (supervised FL,
// personalized FL, fairness-oriented, federated SSL, local-only, the pFL-SSL
// family and Calibre); set CALIBRE_ALL_METHODS=1 for the complete roster.
//
// Expected shapes (paper §V-B/§V-C):
//  * Calibre (SimCLR) has the best accuracy of the SSL family and the lowest
//    variance among high-accuracy methods.
//  * Plain pFL-SSL trails supervised personalization on CIFAR-like data.
//  * On STL-10 (big unlabeled pool) the SSL family overtakes supervised
//    baselines, and Calibre's margin is largest.
#include <iostream>

#include "bench/harness.h"
#include "common/env.h"

using namespace calibre;

namespace {

std::vector<std::string> default_methods() {
  return {"FedAvg",      "FedAvg-FT",  "FedBABU",    "FedRep",
          "FedPer",      "APFL",       "Ditto",      "FedEMA",
          "Script-Fair", "pFL-SimCLR", "pFL-BYOL",   "Calibre (SimCLR)",
          "Calibre (BYOL)"};
}

std::vector<std::string> all_methods() {
  return {"FedAvg",           "FedAvg-FT",        "SCAFFOLD",
          "SCAFFOLD-FT",      "LG-FedAvg",        "FedPer",
          "FedRep",           "FedBABU",          "PerFedAvg",
          "APFL",             "Ditto",            "FedEMA",
          "Script-Fair",      "Script-Convergent", "pFL-SimCLR",
          "pFL-BYOL",         "pFL-SimSiam",      "pFL-MoCoV2",
          "Calibre (SimCLR)", "Calibre (BYOL)",   "Calibre (SimSiam)",
          "Calibre (MoCoV2)"};
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale();
  const std::vector<std::string> methods =
      env::get_flag("CALIBRE_ALL_METHODS") ? all_methods() : default_methods();

  const std::vector<bench::Setting> settings = {
      {"cifar10", "quantity", 2, 0.3},   {"cifar10", "dirichlet", 2, 0.3},
      {"cifar100", "quantity", 10, 0.3}, {"cifar100", "dirichlet", 10, 0.3},
      {"stl10", "quantity", 2, 0.3},     {"stl10", "dirichlet", 2, 0.3},
  };

  std::cout << "Fig. 3 reproduction — " << scale.train_clients
            << " clients, " << scale.rounds << " rounds (paper: 100 clients, "
            << "200 rounds; absolute numbers are not comparable, shapes are)\n";

  for (const bench::Setting& setting : settings) {
    const bench::Workbench workbench = bench::build_workbench(setting, scale);
    std::vector<metrics::ResultRow> rows;
    for (const std::string& method : methods) {
      const fl::RunResult result = bench::run_algorithm(method, workbench);
      rows.push_back(bench::to_row(result));
      std::cout << "  [" << setting.label() << "] " << method << " done ("
                << result.wall_seconds << "s)\n";
    }
    metrics::print_result_table(std::cout, "Fig. 3 — " + setting.label(),
                                rows);
  }
  return 0;
}
