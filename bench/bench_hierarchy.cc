// bench_hierarchy — sharded parallel fold trees vs the flat fold.
//
// Synthesizes K f16-serialized client updates at a large model dimension
// and folds them through fl::ShardedFolder at shard counts {1, 2, 4, 8}:
// shard 1 is the inline flat fold (the pre-shard server path), higher
// counts decode + fold on parallel shard workers and merge in shard order
// at collect. A two-level topology (two edge folders of 4 shards each,
// edge roots merged via StreamingAggregator::merge) demonstrates the same
// algebra composing across aggregation tiers, the way a geo-distributed
// deployment would place edge aggregators in front of the server.
//
// The HARD gate is determinism, not speed: every configuration must hash
// bit-identical to the flat fold (the fixed-point accumulators in
// flapi/fixed_accum.h guarantee it), and the bench exits nonzero on any
// mismatch. Throughput is reported per shard count; the parallel speedup
// only materialises with real cores (hardware_threads is recorded in the
// JSON so single-core CI numbers are not mistaken for the scaling claim).
//
//   bench_hierarchy               # full size -> BENCH_hierarchy.json
//   bench_hierarchy --smoke       # CI-sized, a couple of seconds
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "comm/payload.h"
#include "common/thread_pool.h"
#include "fl/shard_fold.h"
#include "tensor/rng.h"

namespace calibre::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

struct HierarchyOptions {
  int dim = 1 << 18;    // floats per update
  int updates = 64;     // K folded per configuration
  std::string out = "BENCH_hierarchy.json";
};

// Minimal algorithm whose only job is handing ShardedFolder a mergeable
// native fold; the training-side entry points are never called here.
class BenchAlgo : public fl::Algorithm {
 public:
  BenchAlgo() : fl::Algorithm(fl::FlConfig{}) {}
  std::string name() const override { return "bench-hierarchy"; }
  nn::ModelState initialize() override { return nn::ModelState(); }
  fl::ClientUpdate local_update(const nn::ModelState&,
                                const fl::ClientContext&) override {
    return {};
  }
  double personalize(const nn::ModelState&,
                     const fl::PersonalizationContext&) override {
    return 0.0;
  }
  std::unique_ptr<fl::StreamingAggregator> make_aggregator(
      const nn::ModelState&, int) override {
    return std::make_unique<fl::WeightedStreamingAggregator>();
  }
};

std::uint64_t fnv1a(const std::vector<float>& values) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const float v : values) {
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 32; b += 8) {
      hash ^= (bits >> b) & 0xFFu;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

struct FoldRun {
  int shards = 0;
  double seconds = 0.0;        // submit -> collect -> finish, wall clock
  double decode_seconds = 0.0; // summed across workers (CPU seconds)
  double fold_seconds = 0.0;
  std::uint64_t hash = 0;
};

FoldRun run_sharded(BenchAlgo& algo, const std::vector<comm::Payload>& wire,
                    int shards) {
  common::ThreadPool pool(static_cast<std::size_t>(shards));
  const nn::ModelState global;
  const SteadyClock::time_point start = SteadyClock::now();
  fl::ShardedFolder folder(algo, global, /*round=*/0, shards,
                           shards > 1 ? &pool : nullptr, wire.size());
  for (std::size_t rank = 0; rank < wire.size(); ++rank) {
    folder.submit(static_cast<int>(rank), wire[rank], nullptr, 1.0f);
  }
  std::unique_ptr<fl::StreamingAggregator> merged = folder.collect();
  const nn::ModelState state = merged->finish();

  FoldRun run;
  run.shards = shards;
  run.seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  run.decode_seconds = folder.decode_seconds();
  run.fold_seconds = folder.fold_seconds();
  run.hash = fnv1a(state.values());
  return run;
}

// Two-level tree: the update stream splits across two edge folders (4
// shards each), whose merged roots combine server-side with one more
// merge(). Any disjoint partition of the updates must land on the flat
// fold's bits.
FoldRun run_two_level(BenchAlgo& algo, const std::vector<comm::Payload>& wire) {
  common::ThreadPool pool(8);
  const nn::ModelState global;
  const int edge_shards = 4;
  const SteadyClock::time_point start = SteadyClock::now();
  fl::ShardedFolder edge_a(algo, global, 0, edge_shards, &pool, wire.size());
  fl::ShardedFolder edge_b(algo, global, 0, edge_shards, &pool, wire.size());
  const std::size_t half = wire.size() / 2;
  for (std::size_t rank = 0; rank < wire.size(); ++rank) {
    fl::ShardedFolder& edge = rank < half ? edge_a : edge_b;
    edge.submit(static_cast<int>(rank), wire[rank], nullptr, 1.0f);
  }
  std::unique_ptr<fl::StreamingAggregator> root = edge_a.collect();
  std::unique_ptr<fl::StreamingAggregator> other = edge_b.collect();
  root->merge(std::move(*other));
  const nn::ModelState state = root->finish();

  FoldRun run;
  run.shards = 2 * edge_shards;
  run.seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();
  run.decode_seconds = edge_a.decode_seconds() + edge_b.decode_seconds();
  run.fold_seconds = edge_a.fold_seconds() + edge_b.fold_seconds();
  run.hash = fnv1a(state.values());
  return run;
}

int run(const HierarchyOptions& options) {
  // Deterministic synthetic updates, serialized once through the f16 wire
  // codec so every fold pays a realistic decode.
  rng::Generator gen(0x5AD5);
  std::vector<comm::Payload> wire;
  wire.reserve(static_cast<std::size_t>(options.updates));
  for (int k = 0; k < options.updates; ++k) {
    fl::ClientUpdate update;
    std::vector<float> values(static_cast<std::size_t>(options.dim));
    for (float& v : values) v = static_cast<float>(gen.normal());
    update.state = nn::ModelState(std::move(values));
    update.weight = static_cast<float>(1 + k % 7);
    update.scalars["divergence"] = static_cast<float>(gen.uniform());
    wire.emplace_back(fl::serialize_update(update, comm::Codec::kF16));
  }

  BenchAlgo algo;
  std::vector<FoldRun> runs;
  for (const int shards : {1, 2, 4, 8}) {
    if (shards > options.updates) continue;
    runs.push_back(run_sharded(algo, wire, shards));
  }
  const FoldRun two_level = run_two_level(algo, wire);
  const std::uint64_t flat_hash = runs.front().hash;

  const double updates = static_cast<double>(options.updates);
  bool hash_ok = true;
  for (const FoldRun& run : runs) {
    const bool match = run.hash == flat_hash;
    hash_ok = hash_ok && match;
    std::printf(
        "[hierarchy] shards %d  %7.3fs  %8.1f upd/s  decode %6.3fs  "
        "fold %6.3fs  hash %016llx %s\n",
        run.shards, run.seconds, updates / run.seconds, run.decode_seconds,
        run.fold_seconds, static_cast<unsigned long long>(run.hash),
        match ? "OK" : "MISMATCH");
  }
  const bool two_level_match = two_level.hash == flat_hash;
  hash_ok = hash_ok && two_level_match;
  std::printf(
      "[hierarchy] two-level (2 edges x 4 shards)  %7.3fs  hash %016llx %s\n",
      two_level.seconds, static_cast<unsigned long long>(two_level.hash),
      two_level_match ? "OK" : "MISMATCH");

  const std::size_t hardware = common::ThreadPool::default_parallelism();
  std::printf("[hierarchy] hardware threads: %zu%s\n", hardware,
              hardware < 2 ? " (parallel speedup not observable here)" : "");

  std::ofstream out(options.out);
  out << "{\n  \"generated_by\": \"bench_hierarchy\",\n"
      << "  \"dim\": " << options.dim << ",\n"
      << "  \"updates\": " << options.updates << ",\n"
      << "  \"hardware_threads\": " << hardware << ",\n"
      << "  \"flat_hash\": \"" << std::hex << flat_hash << std::dec << "\",\n"
      << "  \"all_hashes_match\": " << (hash_ok ? "true" : "false") << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const FoldRun& run = runs[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"shards\": %d, \"seconds\": %.4f, "
                  "\"updates_per_sec\": %.1f, \"decode_seconds\": %.4f, "
                  "\"fold_seconds\": %.4f, \"hash\": \"%016llx\"},\n",
                  run.shards, run.seconds, updates / run.seconds,
                  run.decode_seconds, run.fold_seconds,
                  static_cast<unsigned long long>(run.hash));
    out << buffer;
  }
  {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"topology\": \"two-level\", \"edges\": 2, "
                  "\"shards_per_edge\": 4, \"seconds\": %.4f, "
                  "\"hash\": \"%016llx\"}\n",
                  two_level.seconds,
                  static_cast<unsigned long long>(two_level.hash));
    out << buffer;
  }
  out << "  ]\n}\n";
  std::printf("[hierarchy] wrote %s\n", options.out.c_str());

  if (!hash_ok) {
    std::fprintf(stderr,
                 "[hierarchy] FAIL: sharded fold is not bit-identical to the "
                 "flat fold\n");
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace calibre::bench

int main(int argc, char** argv) {
  using calibre::bench::HierarchyOptions;
  HierarchyOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--smoke") {
      // CI-sized: still exercises every shard count, the strand workers,
      // and the two-level merge, in a couple of seconds.
      options.dim = 1 << 13;
      options.updates = 16;
    } else if (arg == "--dim" && has_value) {
      options.dim = std::atoi(argv[++i]);
    } else if (arg == "--updates" && has_value) {
      options.updates = std::atoi(argv[++i]);
    } else if (arg == "--out" && has_value) {
      options.out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (options.dim <= 0 || options.updates < 8) {
    std::fprintf(stderr, "need --dim > 0 and --updates >= 8\n");
    return 1;
  }
  return calibre::bench::run(options);
}
