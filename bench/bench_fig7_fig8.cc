// Figs. 7 & 8 — six-method representation comparison: FedAvg, FedRep,
// FedPer, FedBABU, LG-FedAvg and Calibre (SimCLR).
//
// Fig. 7: CIFAR-10-like under D-non-IID(0.3). Fig. 8: STL-10-like under
// Q-non-IID (S = 2). The paper's t-SNE panels show Calibre (SimCLR) with the
// clearest clusters; here each encoder's representation quality is measured
// on the same pooled client samples, and embeddings are exported to CSV.
//
// LG-FedAvg keeps its representation layers per-client, so its features are
// extracted with each client's own local encoder (the federated part is
// only the head).
#include <iostream>

#include "bench/harness.h"
#include "algos/lg_fedavg.h"
#include "core/pfl_ssl.h"

using namespace calibre;

namespace {

void run_figure(const std::string& title, const bench::Setting& setting,
                const bench::Scale& scale) {
  const bench::Workbench workbench = bench::build_workbench(setting, scale);
  const bench::PooledSamples pooled = bench::pool_client_samples(
      workbench.fed, /*num_clients=*/6, /*per_client=*/50);

  std::vector<metrics::RepresentationQuality> rows;
  for (const std::string& method :
       {std::string("FedAvg"), std::string("FedRep"), std::string("FedPer"),
        std::string("FedBABU"), std::string("LG-FedAvg"),
        std::string("Calibre (SimCLR)")}) {
    const auto algorithm = algos::make_algorithm(method, workbench.config);
    const fl::RunResult result = bench::run_algorithm(*algorithm, workbench);
    tensor::Tensor features;
    if (auto* pfl = dynamic_cast<core::PflSsl*>(algorithm.get())) {
      features = pfl->extract_features(result.final_state, pooled.x);
    } else if (auto* lg = dynamic_cast<algos::LgFedAvg*>(algorithm.get())) {
      // LG-FedAvg's encoders never leave the client: extract each client's
      // pooled samples with that client's own local representation.
      std::vector<tensor::Tensor> parts;
      for (int c = 0; c < 6 && c < workbench.fed.num_train_clients(); ++c) {
        const data::Dataset& shard =
            workbench.fed.test[static_cast<std::size_t>(c)];
        const int take = std::min<int>(50, static_cast<int>(shard.size()));
        std::vector<int> idx(static_cast<std::size_t>(take));
        for (int i = 0; i < take; ++i) idx[static_cast<std::size_t>(i)] = i;
        parts.push_back(
            lg->client_features(c, tensor::take_rows(shard.x, idx)));
      }
      features = tensor::concat_rows(parts);
    } else {
      features = bench::supervised_features(method, result.final_state,
                                            workbench.config, pooled.x);
    }
    rows.push_back(bench::measure_representation(
        title + " " + method, features, pooled.labels, pooled.client_ids,
        "."));
    std::cout << "  [" << title << "] " << method << " done\n";
  }
  metrics::print_quality_table(std::cout, title + " — " + setting.label(),
                               rows);
}

}  // namespace

int main() {
  const bench::Scale scale = bench::resolve_scale();
  std::cout << "Figs. 7 & 8 reproduction\n";
  run_figure("Fig7", {"cifar10", "dirichlet", 2, 0.3}, scale);
  run_figure("Fig8", {"stl10", "quantity", 2, 0.3}, scale);
  std::cout << "Expected shape: Calibre (SimCLR) has the highest "
               "silhouette/purity in both settings.\n";
  std::cout << "t-SNE embeddings exported to ./tsne_*.csv\n";
  return 0;
}
