// Fig. 4 — Mean and variance of test accuracy for participating AND novel
// clients under distribution-based label non-IID (Dirichlet 0.3) on the
// CIFAR-10- and CIFAR-100-like datasets.
//
// The paper uses 100 participating + 50 novel clients; the novel clients
// never train — they only download the final global model and personalize.
//
// Expected shapes (paper §V-B/§V-D):
//  * Calibre (SimCLR) beats FedAvg-FT on mean accuracy (paper: +2.97% on
//    CIFAR-10, +7.11% on CIFAR-100) with ~23.8% lower variance.
//  * On novel clients Calibre (SimCLR) outperforms FedBABU (paper: +2.2% on
//    CIFAR-10, +9.6% on CIFAR-100) — the SSL encoder transfers to unseen
//    data distributions.
#include <iostream>

#include "bench/harness.h"
#include "metrics/stats.h"

using namespace calibre;

int main() {
  const bench::Scale scale = bench::resolve_scale();
  const std::vector<std::string> methods = {
      "FedAvg-FT", "FedBABU",    "FedRep",           "APFL",
      "Ditto",     "FedEMA",     "pFL-SimCLR",       "pFL-MoCoV2",
      "Calibre (SimCLR)", "Calibre (MoCoV2)"};

  std::cout << "Fig. 4 reproduction — " << scale.train_clients
            << " participating + " << scale.novel_clients
            << " novel clients (paper: 100 + 50)\n";

  for (const std::string& dataset : {std::string("cifar10"),
                                     std::string("cifar100")}) {
    const bench::Setting setting{dataset, "dirichlet", 2, 0.3};
    const bench::Workbench workbench = bench::build_workbench(setting, scale);
    std::vector<metrics::ResultRow> participating;
    std::vector<metrics::ResultRow> novel;
    for (const std::string& method : methods) {
      const fl::RunResult result =
          bench::run_algorithm(method, workbench, /*personalize_novel=*/true);
      participating.push_back(bench::to_row(result));
      metrics::ResultRow novel_row;
      novel_row.method = method;
      novel_row.stats = metrics::compute_stats(result.novel_accuracies);
      novel.push_back(novel_row);
      std::cout << "  [" << setting.label() << "] " << method << " done\n";
    }
    metrics::print_result_table(
        std::cout, "Fig. 4 — " + setting.label() + " — participating clients",
        participating);
    metrics::print_result_table(
        std::cout, "Fig. 4 — " + setting.label() + " — novel clients", novel);
  }
  return 0;
}
